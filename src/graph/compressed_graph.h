// Parallel byte-encoded compressed CSR (the Ligra+ format [87], used by
// GBBS and Sage for the ClueWeb/Hyperlink graphs).
//
// Each vertex's sorted adjacency list is cut into compression blocks of
// `block_size` edges. Within a block, the first neighbor is zigzag-encoded
// relative to the source vertex and subsequent neighbors are delta-encoded
// varints; weights (if any) are interleaved. Blocks are independently
// decodable, which gives parallelism within high-degree vertices and is
// exactly the granularity the graph filter's bitset blocks correspond to
// (Section 4.2: "this block size is always equal to the compression block
// size").
//
// The class mirrors Graph's read API and charges the PSAM cost model by
// *compressed* words, modeling the NVRAM-read savings of compression.
#pragma once

#include <span>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "graph/varint.h"
#include "nvram/cost_model.h"
#include "parallel/parallel.h"

namespace sage {

/// Immutable byte-compressed graph.
class CompressedGraph {
 public:
  /// Marker used by generic code to select block-decode paths.
  static constexpr bool kCompressed = true;

  /// Compresses `g` with the given compression block size (edges per block).
  /// Per the paper, the filter block size F_B must equal this value for
  /// compressed inputs.
  static CompressedGraph FromGraph(const Graph& g, uint32_t block_size);

  /// Walks every compression block with the bounded varint decoder and
  /// verifies the encoding is well-formed: every value decodes within its
  /// block's byte extent, each block consumes its extent exactly, and every
  /// decoded neighbor id is in range. Returns Corruption naming the first
  /// bad vertex. Cheap (one decode pass) relative to any traversal; run it
  /// once before trusting bytes that did not come from FromGraph.
  Status ValidateStructure() const;

  vertex_id num_vertices() const {
    return static_cast<vertex_id>(degrees_.size());
  }
  edge_offset num_edges() const { return num_edges_; }
  bool symmetric() const { return symmetric_; }
  bool weighted() const { return weighted_; }
  double avg_degree() const {
    return degrees_.empty() ? 0.0
                            : static_cast<double>(num_edges_) /
                                  static_cast<double>(degrees_.size());
  }
  /// Edges per compression block.
  uint32_t block_size() const { return block_size_; }

  /// Degree of v; charges one graph-region read.
  vertex_id degree(vertex_id v) const {
    nvram::Cost().ChargeGraphRead(1, first_block_[v]);
    return degrees_[v];
  }
  vertex_id degree_uncharged(vertex_id v) const { return degrees_[v]; }

  /// Number of compression blocks for v.
  uint64_t num_blocks(vertex_id v) const {
    return (static_cast<uint64_t>(degrees_[v]) + block_size_ - 1) /
           block_size_;
  }

  /// Edges in block b of v (the last block may be short).
  uint32_t block_degree(vertex_id v, uint64_t b) const {
    uint64_t start = b * block_size_;
    uint64_t d = degrees_[v];
    SAGE_DCHECK(start < d || (d == 0 && b == 0));
    return static_cast<uint32_t>(
        std::min<uint64_t>(block_size_, d - start));
  }

  /// Decodes block b of v into out_nbrs (and out_wts when weighted; pass
  /// nullptr for unweighted). Returns the number of edges decoded. Charges
  /// the compressed bytes of the block.
  uint32_t DecodeBlock(vertex_id v, uint64_t b, vertex_id* out_nbrs,
                       weight_t* out_wts) const {
    uint64_t blk = first_block_[v] + b;
    uint64_t lo = block_bytes_offset_[blk], hi = block_bytes_offset_[blk + 1];
    ChargeBytes(lo, hi - lo);
    return DecodeBlockUncharged(v, b, out_nbrs, out_wts);
  }

  /// Decode without charging (caller charged at a coarser granularity).
  /// Decoding is bounded by the block's byte extent: structural corruption
  /// aborts with a diagnostic instead of reading out of bounds (untrusted
  /// bytes should be vetted once with ValidateStructure(), which reports
  /// Status instead).
  uint32_t DecodeBlockUncharged(vertex_id v, uint64_t b, vertex_id* out_nbrs,
                                weight_t* out_wts) const {
    uint64_t blk = first_block_[v] + b;
    const uint8_t* p = bytes_.data() + block_bytes_offset_[blk];
    const uint8_t* end = bytes_.data() + block_bytes_offset_[blk + 1];
    uint32_t k = block_degree(v, b);
    if (k == 0) return 0;
    uint64_t value;
    auto decode = [&]() -> uint64_t {
      SAGE_CHECK_MSG(VarintDecodeBounded(p, end, &value),
                     "corrupt compressed block %llu of vertex %u",
                     static_cast<unsigned long long>(b), v);
      return value;
    };
    int64_t first = static_cast<int64_t>(v) + ZigzagDecode(decode());
    out_nbrs[0] = static_cast<vertex_id>(first);
    if (weighted_) out_wts[0] = static_cast<weight_t>(decode());
    for (uint32_t i = 1; i < k; ++i) {
      out_nbrs[i] = out_nbrs[i - 1] + static_cast<vertex_id>(decode());
      if (weighted_) out_wts[i] = static_cast<weight_t>(decode());
    }
    return k;
  }

  /// Applies f(v, u, w) over v's neighbors, decoding block by block.
  /// Charges the compressed bytes of the adjacency list.
  template <typename F>
  void MapNeighbors(vertex_id v, const F& f) const {
    ChargeVertex(v);
    uint64_t nb = num_blocks(v);
    vertex_id nbrs[kMaxBlockSize];
    weight_t wts[kMaxBlockSize];
    for (uint64_t b = 0; b < nb; ++b) {
      uint32_t k = DecodeBlockUncharged(v, b, nbrs, wts);
      for (uint32_t i = 0; i < k; ++i) {
        f(v, nbrs[i], weighted_ ? wts[i] : weight_t{1});
      }
    }
  }

  /// MapNeighbors with early exit; returns true if all edges were visited.
  template <typename F>
  bool MapNeighborsWhile(vertex_id v, const F& f) const {
    ChargeVertex(v);
    uint64_t nb = num_blocks(v);
    vertex_id nbrs[kMaxBlockSize];
    weight_t wts[kMaxBlockSize];
    for (uint64_t b = 0; b < nb; ++b) {
      uint32_t k = DecodeBlockUncharged(v, b, nbrs, wts);
      for (uint32_t i = 0; i < k; ++i) {
        if (!f(v, nbrs[i], weighted_ ? wts[i] : weight_t{1})) return false;
      }
    }
    return true;
  }

  /// Applies f(v, neighbor, weight) to the edges of v with local indices in
  /// [begin, end). Decodes (and charges) every block overlapping the range —
  /// compressed blocks must be decoded wholesale to reach interior edges.
  template <typename F>
  void MapNeighborsRange(vertex_id v, edge_offset begin, edge_offset end,
                         const F& f) const {
    if (begin >= end) return;
    uint64_t first_b = begin / block_size_;
    uint64_t last_b = (end - 1) / block_size_;
    vertex_id nbrs[kMaxBlockSize];
    weight_t wts[kMaxBlockSize];
    for (uint64_t b = first_b; b <= last_b; ++b) {
      uint32_t k = DecodeBlock(v, b, nbrs, wts);
      uint64_t base = b * block_size_;
      uint64_t lo = begin > base ? begin - base : 0;
      uint64_t hi = std::min<uint64_t>(k, end - base);
      for (uint64_t i = lo; i < hi; ++i) {
        f(v, nbrs[i], weighted_ ? wts[i] : weight_t{1});
      }
    }
  }

  /// Applies f over v's neighbors with blocks decoded in parallel.
  template <typename F>
  void MapNeighborsParallel(vertex_id v, const F& f) const {
    ChargeVertex(v);
    uint64_t nb = num_blocks(v);
    parallel_for(
        0, nb,
        [&](size_t b) {
          vertex_id nbrs[kMaxBlockSize];
          weight_t wts[kMaxBlockSize];
          uint32_t k = DecodeBlockUncharged(v, b, nbrs, wts);
          for (uint32_t i = 0; i < k; ++i) {
            f(v, nbrs[i], weighted_ ? wts[i] : weight_t{1});
          }
        },
        1);
  }

  /// Parallel monoid reduce over v's neighborhood (block-parallel).
  template <typename T, typename G, typename Op>
  T ReduceNeighbors(vertex_id v, const G& g, const Op& op, T id) const {
    ChargeVertex(v);
    uint64_t nb = num_blocks(v);
    return reduce(
        nb,
        [&](size_t b) {
          vertex_id nbrs[kMaxBlockSize];
          weight_t wts[kMaxBlockSize];
          uint32_t k = DecodeBlockUncharged(v, b, nbrs, wts);
          T acc = id;
          for (uint32_t i = 0; i < k; ++i) {
            acc = op(acc, g(v, nbrs[i], weighted_ ? wts[i] : weight_t{1}));
          }
          return acc;
        },
        op, id);
  }

  /// Global word address of v's first block (NUMA/cache hints).
  uint64_t AdjacencyAddress(vertex_id v) const {
    return block_bytes_offset_[first_block_[v]] / 8;
  }

  /// The raw encoded edge bytes (for validation and size inspection).
  std::span<const uint8_t> encoded_bytes() const { return bytes_; }

  /// Compressed size in bytes (edge bytes + metadata arrays).
  size_t SizeBytes() const {
    return bytes_.size() + degrees_.size() * sizeof(vertex_id) +
           first_block_.size() * sizeof(uint64_t) +
           block_bytes_offset_.size() * sizeof(uint64_t);
  }

  /// Largest supported compression block size (stack decode buffers).
  static constexpr uint32_t kMaxBlockSize = 1024;

 private:
  void ChargeVertex(vertex_id v) const {
    uint64_t lo = block_bytes_offset_[first_block_[v]];
    uint64_t hi = block_bytes_offset_[first_block_[v + 1]];
    ChargeBytes(lo, hi - lo);
  }
  void ChargeBytes(uint64_t byte_addr, uint64_t bytes) const {
    nvram::Cost().ChargeGraphRead(1 + bytes / 8, byte_addr / 8);
  }

  vertex_id NumVerticesInternal() const {
    return static_cast<vertex_id>(degrees_.size());
  }

  std::vector<vertex_id> degrees_;
  std::vector<uint64_t> first_block_;        // n+1: first block index of v
  std::vector<uint64_t> block_bytes_offset_; // NB+1: byte offset per block
  std::vector<uint8_t> bytes_;               // encoded edge data
  edge_offset num_edges_ = 0;
  uint32_t block_size_ = 64;
  bool symmetric_ = false;
  bool weighted_ = false;
};

}  // namespace sage
