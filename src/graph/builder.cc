#include "graph/builder.h"

#include <algorithm>
#include <atomic>

#include "common/random.h"
#include "graph/delta.h"
#include "parallel/parallel.h"
#include "parallel/primitives.h"
#include "parallel/sort.h"

namespace sage {

namespace {

/// Sorts edges by (u, v) and removes exact duplicates, keeping the first
/// occurrence's weight (stable sort guarantees determinism).
std::vector<WeightedEdge> SortAndDedup(std::vector<WeightedEdge> edges,
                                       bool dedup) {
  parallel_sort_inplace(edges, [](const WeightedEdge& a,
                                  const WeightedEdge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  if (!dedup || edges.empty()) return edges;
  auto keep = pack_index<size_t>(edges.size(), [&](size_t i) {
    return i == 0 || edges[i].u != edges[i - 1].u ||
           edges[i].v != edges[i - 1].v;
  });
  return tabulate<WeightedEdge>(keep.size(),
                                [&](size_t i) { return edges[keep[i]]; });
}

}  // namespace

Result<Graph> GraphBuilder::Build(vertex_id n, std::vector<WeightedEdge> edges,
                                  const BuildOptions& options) {
  // Validate ids.
  std::atomic<bool> bad{false};
  parallel_for(0, edges.size(), [&](size_t i) {
    if (edges[i].u >= n || edges[i].v >= n) {
      bad.store(true, std::memory_order_relaxed);
    }
  });
  if (bad.load()) {
    return Status::InvalidArgument("edge references vertex id >= n");
  }

  if (options.remove_self_loops) {
    edges = filter(edges, [](const WeightedEdge& e) { return e.u != e.v; });
  }
  if (options.symmetrize) {
    size_t base = edges.size();
    edges.resize(2 * base);
    parallel_for(0, base, [&](size_t i) {
      edges[base + i] = WeightedEdge{edges[i].v, edges[i].u, edges[i].w};
    });
  }
  edges = SortAndDedup(std::move(edges), options.remove_duplicates);

  // Count per-vertex degrees; edges are sorted so boundaries give the counts,
  // but a shared atomic histogram is simpler and the builder is unmeasured.
  std::vector<std::atomic<edge_offset>> counts(n + 1);
  parallel_for(0, n + 1, [&](size_t i) {
    counts[i].store(0, std::memory_order_relaxed);
  });
  parallel_for(0, edges.size(), [&](size_t i) {
    counts[edges[i].u].fetch_add(1, std::memory_order_relaxed);
  });
  std::vector<edge_offset> offsets(n + 1);
  parallel_for(0, n + 1, [&](size_t i) {
    offsets[i] = counts[i].load(std::memory_order_relaxed);
  });
  offsets[n] = 0;
  // Exclusive scan over the first n entries; offsets[n] becomes the total.
  std::vector<edge_offset> degs(offsets.begin(), offsets.begin() + n);
  edge_offset total = scan_add_inplace(degs);
  parallel_for(0, n, [&](size_t i) { offsets[i] = degs[i]; });
  offsets[n] = total;

  std::vector<vertex_id> neighbors(edges.size());
  std::vector<weight_t> weights;
  if (options.keep_weights) weights.resize(edges.size());
  parallel_for(0, edges.size(), [&](size_t i) {
    neighbors[i] = edges[i].v;
    if (options.keep_weights) weights[i] = edges[i].w;
  });
  return Graph(std::move(offsets), std::move(neighbors), std::move(weights),
               options.symmetrize);
}

Graph GraphBuilder::FromEdges(vertex_id n, std::vector<WeightedEdge> edges) {
  BuildOptions opts;
  auto result = Build(n, std::move(edges), opts);
  return result.TakeValue();
}

Graph GraphBuilder::FromWeightedEdges(vertex_id n,
                                      std::vector<WeightedEdge> edges) {
  BuildOptions opts;
  opts.keep_weights = true;
  auto result = Build(n, std::move(edges), opts);
  return result.TakeValue();
}

Graph AddRandomWeights(const Graph& g, uint64_t seed) {
  // The raw spans below bypass a delta overlay; weight the merged view.
  // (Weights hash the undirected pair, so the overlay view's twin matches
  // the compacted graph's twin bit for bit.)
  if (g.has_overlay()) return AddRandomWeights(FlattenOverlay(g), seed);
  vertex_id n = g.num_vertices();
  uint32_t max_w = 2;
  while ((1ull << max_w) < n) ++max_w;  // max_w = ceil(log2 n), at least 2
  Random rng(seed);
  const auto& offsets = g.raw_offsets();
  const auto& neighbors = g.raw_neighbors();
  std::vector<weight_t> weights(neighbors.size());
  // Hash the undirected pair (min, max) so both directions get equal weight.
  parallel_for(0, n, [&](size_t u) {
    for (edge_offset i = offsets[u]; i < offsets[u + 1]; ++i) {
      vertex_id v = neighbors[i];
      uint64_t lo = std::min<uint64_t>(u, v), hi = std::max<uint64_t>(u, v);
      weights[i] =
          1 + static_cast<weight_t>(rng.ith_rand(lo * n + hi) % (max_w - 1));
    }
  });
  return Graph(std::vector<edge_offset>(offsets.begin(), offsets.end()),
               std::vector<vertex_id>(neighbors.begin(), neighbors.end()),
               std::move(weights), g.symmetric());
}

}  // namespace sage
