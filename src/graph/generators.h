// Synthetic graph generators. These stand in for the paper's datasets
// (Table 2): RMAT approximates the power-law web/social graphs (ClueWeb,
// Hyperlink, Twitter, Orkut, LiveJournal), and the structured families
// (grid, star, path, complete, cycle) exercise edge cases in tests.
// All generators are deterministic for a fixed seed.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "graph/types.h"

namespace sage {

/// Erdos-Renyi-style graph: `num_directed_edges` uniform random pairs
/// (self-loops and duplicates removed), then symmetrized.
Graph UniformRandomGraph(vertex_id n, uint64_t num_directed_edges,
                         uint64_t seed);

/// RMAT / Graph500-style power-law graph on 2^log_n vertices with
/// `num_directed_edges` samples (a=0.5, b=c=0.1, d=0.3 by default),
/// symmetrized. Produces the skewed degree distributions of web graphs.
Graph RmatGraph(int log_n, uint64_t num_directed_edges, uint64_t seed,
                double a = 0.5, double b = 0.1, double c = 0.1);

/// rows x cols 2-D grid (4-neighbor), symmetric. Large diameter; exercises
/// many-round traversals.
Graph GridGraph(vertex_id rows, vertex_id cols);

/// Star: vertex 0 adjacent to all others. Maximum degree skew.
Graph StarGraph(vertex_id n);

/// Simple path 0-1-...-(n-1). Diameter n-1.
Graph PathGraph(vertex_id n);

/// Cycle on n vertices.
Graph CycleGraph(vertex_id n);

/// Complete graph K_n (use small n).
Graph CompleteGraph(vertex_id n);

/// Graph with `num_components` disjoint cliques of size `clique_size`
/// (for connectivity/spanning-forest tests).
Graph DisjointCliques(vertex_id num_components, vertex_id clique_size);

}  // namespace sage
