#include "graph/compressed_graph.h"

#include <algorithm>

#include "parallel/primitives.h"

namespace sage {

CompressedGraph CompressedGraph::FromGraph(const Graph& g,
                                           uint32_t block_size) {
  SAGE_CHECK(block_size >= 1 && block_size <= kMaxBlockSize);
  const vertex_id n = g.num_vertices();
  CompressedGraph cg;
  cg.block_size_ = block_size;
  cg.symmetric_ = g.symmetric();
  cg.weighted_ = g.weighted();
  cg.num_edges_ = g.num_edges();
  cg.degrees_ = tabulate<vertex_id>(
      n, [&](size_t v) {
        return g.degree_uncharged(static_cast<vertex_id>(v));
      });

  // Block index structure.
  std::vector<uint64_t> blocks_per_vertex(n);
  parallel_for(0, n, [&](size_t v) {
    blocks_per_vertex[v] =
        (static_cast<uint64_t>(cg.degrees_[v]) + block_size - 1) / block_size;
  });
  uint64_t total_blocks = scan_add_inplace(blocks_per_vertex);
  cg.first_block_.resize(n + 1);
  parallel_for(0, n, [&](size_t v) { cg.first_block_[v] = blocks_per_vertex[v]; });
  cg.first_block_[n] = total_blocks;

  // Encode each vertex independently into a scratch buffer; adjacency lists
  // must be sorted ascending for delta codes, so sort a copy per vertex.
  std::vector<std::vector<uint8_t>> per_vertex(n);
  std::vector<std::vector<uint64_t>> per_vertex_block_sizes(n);
  parallel_for(0, n, [&](size_t vi) {
    vertex_id v = static_cast<vertex_id>(vi);
    vertex_id d = cg.degrees_[v];
    if (d == 0) return;
    auto nbrs = g.NeighborsUncharged(v);
    std::vector<std::pair<vertex_id, weight_t>> sorted(d);
    for (vertex_id i = 0; i < d; ++i) {
      sorted[i] = {nbrs[i], g.weight_at(v, i)};
    }
    std::sort(sorted.begin(), sorted.end());
    auto& out = per_vertex[vi];
    auto& bsizes = per_vertex_block_sizes[vi];
    for (vertex_id start = 0; start < d; start += block_size) {
      size_t before = out.size();
      vertex_id end = std::min<vertex_id>(d, start + block_size);
      int64_t delta = static_cast<int64_t>(sorted[start].first) -
                      static_cast<int64_t>(v);
      VarintEncode(ZigzagEncode(delta), out);
      if (cg.weighted_) VarintEncode(sorted[start].second, out);
      for (vertex_id i = start + 1; i < end; ++i) {
        VarintEncode(sorted[i].first - sorted[i - 1].first, out);
        if (cg.weighted_) VarintEncode(sorted[i].second, out);
      }
      bsizes.push_back(out.size() - before);
    }
  });

  // Lay blocks out contiguously.
  std::vector<uint64_t> vertex_bytes(n);
  parallel_for(0, n, [&](size_t v) { vertex_bytes[v] = per_vertex[v].size(); });
  uint64_t total_bytes = scan_add_inplace(vertex_bytes);
  cg.bytes_.resize(total_bytes);
  cg.block_bytes_offset_.assign(total_blocks + 1, 0);
  parallel_for(0, n, [&](size_t vi) {
    std::copy(per_vertex[vi].begin(), per_vertex[vi].end(),
              cg.bytes_.begin() + vertex_bytes[vi]);
    uint64_t byte_off = vertex_bytes[vi];
    uint64_t blk = cg.first_block_[vi];
    for (uint64_t bs : per_vertex_block_sizes[vi]) {
      cg.block_bytes_offset_[blk++] = byte_off;
      byte_off += bs;
    }
  });
  cg.block_bytes_offset_[total_blocks] = total_bytes;
  return cg;
}

Status CompressedGraph::ValidateStructure() const {
  const vertex_id n = num_vertices();
  // Decode every block with the bounded decoder, tracking the smallest
  // vertex whose encoding is malformed (kNoVertex = all clean). Unlike the
  // hot decode path this never aborts: it is the vetting step for bytes
  // that did not come from FromGraph.
  vertex_id bad = reduce<vertex_id>(
      n,
      [&](size_t vi) -> vertex_id {
        vertex_id v = static_cast<vertex_id>(vi);
        const uint64_t nb = num_blocks(v);
        for (uint64_t b = 0; b < nb; ++b) {
          const uint64_t blk = first_block_[v] + b;
          const uint8_t* p = bytes_.data() + block_bytes_offset_[blk];
          const uint8_t* end = bytes_.data() + block_bytes_offset_[blk + 1];
          const uint32_t k = block_degree(v, b);
          uint64_t value;
          if (!VarintDecodeBounded(p, end, &value)) return v;
          // Bound the deltas before arithmetic so a hostile encoding can
          // never overflow the running int64 position.
          const int64_t sn = static_cast<int64_t>(n);
          int64_t delta = ZigzagDecode(value);
          if (delta >= sn || delta < -static_cast<int64_t>(v)) return v;
          int64_t prev = static_cast<int64_t>(v) + delta;
          if (prev >= sn) return v;  // first neighbor id out of range
          if (weighted_ && !VarintDecodeBounded(p, end, &value)) return v;
          for (uint32_t i = 1; i < k; ++i) {
            if (!VarintDecodeBounded(p, end, &value)) return v;
            if (value >= static_cast<uint64_t>(sn)) return v;
            prev += static_cast<int64_t>(value);
            if (prev >= sn) return v;
            if (weighted_ && !VarintDecodeBounded(p, end, &value)) return v;
          }
          // Trailing bytes mean the block index disagrees with the
          // encoding - corrupt even if every value decoded.
          if (p != end) return v;
        }
        return kNoVertex;
      },
      [](vertex_id a, vertex_id b) { return a < b ? a : b; }, kNoVertex);
  if (bad != kNoVertex) {
    return Status::Corruption(
        "compressed graph: malformed block encoding at vertex " +
        std::to_string(bad));
  }
  return Status::OK();
}

}  // namespace sage
