// Dynamic updates over the immutable NVRAM base image: the DRAM delta
// layer of the semi-asymmetric serving story.
//
// The paper's discipline keeps the graph NVRAM-resident and read-only while
// mutable state lives in DRAM. This module extends that to ingestion:
//
//   - EdgeUpdate / DeltaLog: a concurrent insert/delete log, sharded by
//     source vertex so writer threads append mostly without contention.
//     Drain() returns everything in submission order for deterministic
//     batch application (Engine::ApplyUpdates group-commits drains).
//   - DeltaOverlay: an immutable batch-applied view of the log. For every
//     *touched* vertex it stores the full merged adjacency list
//     (base - deletes + inserts, sorted) in DRAM plus a touched bitset;
//     untouched vertices keep reading the base image in place. Built via
//     ApplyUpdateBatch (copy-on-write from the previous overlay, so old
//     epochs keep serving their own view).
//   - OverlayGraphStorage: plugs an overlay behind the GraphStorage seam.
//     Every Graph accessor (and therefore every algorithm and edgeMap)
//     reads base + delta transparently; overlaid lists are charged as DRAM
//     work reads with the same word count the base list would charge, so
//     the overlay view's PSAM totals stay bit-identical to the compacted
//     graph while the DRAM/NVRAM split reflects where the bytes live.
//   - FlattenOverlay: materializes the merged CSR (compaction, or any
//     writer that serializes through the raw spans).
//
// Epoch pinning and the compaction rewrite live in graph/epoch.h and
// api/engine.h (Engine::ApplyUpdates / Engine::Compact).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace sage {

/// One edge mutation. On symmetric graphs both directions (u,v) and (v,u)
/// are applied (a self-loop occupies a single directed slot). Inserting an
/// existing edge updates its weight in place; removing an absent edge is a
/// no-op. Updates never grow the vertex set: ids must be < n.
struct EdgeUpdate {
  vertex_id u = 0;
  vertex_id v = 0;
  weight_t w = 1;
  bool remove = false;

  static EdgeUpdate Insert(vertex_id u, vertex_id v, weight_t w = 1) {
    return EdgeUpdate{u, v, w, false};
  }
  static EdgeUpdate Remove(vertex_id u, vertex_id v) {
    return EdgeUpdate{u, v, 1, true};
  }
};

/// Concurrent edge-update log, sharded by source vertex. Append() is safe
/// from any number of threads and assigns each update a global sequence
/// number; Drain() empties every shard and returns the updates in
/// submission order, so batch application is deterministic regardless of
/// which shard each update landed in.
class DeltaLog {
 public:
  static constexpr int kDefaultShards = 16;

  explicit DeltaLog(int shards = kDefaultShards);

  SAGE_DISALLOW_COPY_AND_ASSIGN(DeltaLog);

  /// Appends a batch; returns the sequence number of its last update (0
  /// when the batch is empty). Safe from any thread.
  uint64_t Append(std::span<const EdgeUpdate> updates);

  /// Removes and returns every pending update, ordered by sequence number.
  /// When `last_seq` is non-null it is raised to the highest drained
  /// sequence (left untouched when nothing was pending).
  std::vector<EdgeUpdate> Drain(uint64_t* last_seq = nullptr);

  /// Updates appended but not yet drained.
  uint64_t pending() const { return pending_.load(std::memory_order_relaxed); }

  int shards() const { return num_shards_; }

 private:
  struct alignas(kCacheLineBytes) Shard {
    mutable Mutex mu;
    std::vector<std::pair<uint64_t, EdgeUpdate>> entries SAGE_GUARDED_BY(mu);
  };

  const int num_shards_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> next_seq_{1};
  std::atomic<uint64_t> pending_{0};
};

/// Immutable DRAM overlay over a base CSR: the merged adjacency lists of
/// every vertex touched by applied updates, plus a touched bitset for O(1)
/// membership. Built by ApplyUpdateBatch; shared (read-only) by every
/// Graph copy of its epoch.
class DeltaOverlay {
 public:
  struct VertexList {
    std::vector<vertex_id> neighbors;  // sorted
    std::vector<weight_t> weights;     // empty iff the graph is unweighted
  };

  vertex_id num_vertices() const { return n_; }

  /// True when v's list lives in this overlay.
  bool touched(vertex_id v) const {
    return ((touched_bits_[v >> 6] >> (v & 63)) & 1ull) != 0;
  }

  /// Merged list of v, or nullptr when untouched.
  const VertexList* Find(vertex_id v) const {
    auto it = lists_.find(v);
    return it == lists_.end() ? nullptr : &it->second;
  }

  /// Directed edges of the overlay view (base m plus the net delta).
  uint64_t num_edges() const { return num_edges_; }

  /// Directed edge slots inserted or deleted relative to the base image
  /// (cumulative across batches; weight upserts do not count).
  uint64_t delta_edges() const { return delta_edges_; }

  /// Vertices whose lists live in DRAM.
  uint64_t touched_vertices() const { return lists_.size(); }

  /// Touched bitset, (n + 63) / 64 words (Graph caches the pointer).
  const std::vector<uint64_t>& touched_bits() const { return touched_bits_; }

 private:
  DeltaOverlay() = default;

  friend Result<std::shared_ptr<const DeltaOverlay>> ApplyUpdateBatch(
      const Graph& base, const std::shared_ptr<const DeltaOverlay>& prev,
      std::span<const EdgeUpdate> updates);

  vertex_id n_ = 0;
  std::vector<uint64_t> touched_bits_;
  std::unordered_map<vertex_id, VertexList> lists_;
  uint64_t num_edges_ = 0;
  uint64_t delta_edges_ = 0;
};

/// GraphStorage presenting `base` with `overlay` merged into reads. The CSR
/// spans, NVRAM residence, and page advice all forward to the base (the
/// prefetch pipeline keeps advising the mapped image; overlaid lists are
/// DRAM and need no advice); delta_overlay() hands the overlay to Graph.
class OverlayGraphStorage final : public GraphStorage {
 public:
  OverlayGraphStorage(std::shared_ptr<const GraphStorage> base,
                      std::shared_ptr<const DeltaOverlay> overlay)
      : base_(std::move(base)), overlay_(std::move(overlay)) {
    SAGE_CHECK(base_ != nullptr && overlay_ != nullptr);
    // Overlays never stack: ApplyUpdateBatch folds new updates into the
    // previous overlay instead, so reads stay one merge deep.
    SAGE_CHECK(base_->delta_overlay() == nullptr);
  }

  std::span<const edge_offset> offsets() const override {
    return base_->offsets();
  }
  std::span<const vertex_id> neighbors() const override {
    return base_->neighbors();
  }
  std::span<const weight_t> weights() const override {
    return base_->weights();
  }
  bool nvram_resident() const override { return base_->nvram_resident(); }
  const DeltaOverlay* delta_overlay() const override {
    return overlay_.get();
  }

  bool SupportsPageAdvice() const override {
    return base_->SupportsPageAdvice();
  }
  uint64_t MappingBytes() const override { return base_->MappingBytes(); }
  uint64_t NeighborsByteOffset() const override {
    return base_->NeighborsByteOffset();
  }
  uint64_t WeightsByteOffset() const override {
    return base_->WeightsByteOffset();
  }
  void AdviseWillNeed(uint64_t offset, uint64_t bytes) const override {
    base_->AdviseWillNeed(offset, bytes);
  }
  void AdviseDontNeed(uint64_t offset, uint64_t bytes) const override {
    base_->AdviseDontNeed(offset, bytes);
  }
  uint64_t CountResidentPages(uint64_t offset, uint64_t bytes) const override {
    return base_->CountResidentPages(offset, bytes);
  }

  const std::shared_ptr<const GraphStorage>& base() const { return base_; }
  const std::shared_ptr<const DeltaOverlay>& overlay() const {
    return overlay_;
  }

 private:
  std::shared_ptr<const GraphStorage> base_;
  std::shared_ptr<const DeltaOverlay> overlay_;
};

/// Builds the overlay resulting from applying `updates` (in order) on top
/// of `prev` (nullptr = the clean base). `base` must be overlay-free.
/// Copy-on-write: `prev` is never modified, so epochs already serving it
/// are unaffected. InvalidArgument when any update references a vertex
/// >= n (no update is applied). Merging runs parallel over touched
/// vertices; callers running concurrently with AlgorithmRegistry::Run must
/// hold internal::SchedulerWidthGuard (Engine::ApplyUpdates does).
Result<std::shared_ptr<const DeltaOverlay>> ApplyUpdateBatch(
    const Graph& base, const std::shared_ptr<const DeltaOverlay>& prev,
    std::span<const EdgeUpdate> updates);

/// Wraps `base` + `overlay` into a Graph whose accessors read the merged
/// view (base must be overlay-free and backed by a storage object).
Graph MakeOverlayGraph(const Graph& base,
                       std::shared_ptr<const DeltaOverlay> overlay);

/// Materializes the merged CSR of `g` into an owned in-memory graph;
/// returns `g` unchanged when it has no overlay. Used by compaction and by
/// writers that serialize through the raw spans.
Graph FlattenOverlay(const Graph& g);

/// Parses a text update stream: one update per line, `u v [w]` inserts
/// (an optional leading `+` token is accepted) and `- u v` removes;
/// '#'/'%' lines are comments. IOError when the file cannot be read,
/// Corruption with line context when it cannot be parsed.
Result<std::vector<EdgeUpdate>> ReadEdgeUpdates(const std::string& path);

}  // namespace sage
