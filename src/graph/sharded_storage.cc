#include "graph/sharded_storage.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <memory>
#include <utility>

#include "parallel/parallel.h"

namespace sage {

namespace {

std::string ErrnoString() { return std::strerror(errno); }

uint64_t PageBytes() {
  static const uint64_t page = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
  return page;
}

uint64_t AlignDownPage(uint64_t x) { return x / PageBytes() * PageBytes(); }
uint64_t AlignUpPage(uint64_t x) { return AlignDownPage(x + PageBytes() - 1); }

/// RAII fd.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

Status PreadExact(int fd, void* dst, uint64_t bytes, uint64_t off,
                  const std::string& path, const char* what) {
  auto* p = static_cast<uint8_t*>(dst);
  while (bytes > 0) {
    ssize_t got = ::pread(fd, p, bytes, static_cast<off_t>(off));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("read error in " + path + " (" + what +
                             "): " + ErrnoString());
    }
    if (got == 0) {
      return Status::Corruption(path + ": truncated " + std::string(what));
    }
    p += got;
    off += static_cast<uint64_t>(got);
    bytes -= static_cast<uint64_t>(got);
  }
  return Status::OK();
}

/// Splices a segment section into the assembled region: the destination
/// byte range [dst_lo, dst_hi) receives the file bytes starting at
/// src_start. Whole interior pages arrive via MAP_FIXED (zero-copy, the
/// congruence contract makes src page-aligned there); the partial pages at
/// the range ends are pread into the reservation's anonymous pages.
Status SpliceSection(uint8_t* region, uint64_t dst_lo, uint64_t dst_hi,
                     int fd, uint64_t src_start, const std::string& path,
                     const char* what) {
  if (dst_lo == dst_hi) return Status::OK();
  const uint64_t interior_lo = AlignUpPage(dst_lo);
  const uint64_t interior_hi = AlignDownPage(dst_hi);
  if (interior_lo >= interior_hi) {
    // The whole section fits inside one page: plain copy.
    return PreadExact(fd, region + dst_lo, dst_hi - dst_lo, src_start, path,
                      what);
  }
  const uint64_t src_interior = src_start + (interior_lo - dst_lo);
  SAGE_DCHECK(src_interior % PageBytes() == 0);
  void* mapped = ::mmap(region + interior_lo,
                        static_cast<size_t>(interior_hi - interior_lo),
                        PROT_READ, MAP_PRIVATE | MAP_FIXED, fd,
                        static_cast<off_t>(src_interior));
  if (mapped == MAP_FAILED) {
    return Status::IOError("mmap failed splicing " + std::string(what) +
                           " of " + path + ": " + ErrnoString());
  }
  SAGE_RETURN_IF_ERROR(PreadExact(fd, region + dst_lo, interior_lo - dst_lo,
                                  src_start, path, what));
  return PreadExact(fd, region + interior_hi, dst_hi - interior_hi,
                    src_start + (interior_hi - dst_lo), path, what);
}

/// Segment-specific header validation: the monolithic rules minus 64-byte
/// section alignment (segments are page-congruent instead, see shard.h),
/// plus consistency with the shard's manifest entry.
Status ValidateSegmentHeader(const BinaryGraphHeader& h, const ShardInfo& info,
                             const ShardManifest& mf, uint64_t file_size,
                             const std::string& path) {
  if (!HasBinaryGraphMagic(h.magic, sizeof(h.magic))) {
    return Status::Corruption(path + ": not a .bsadj segment (bad magic)");
  }
  if (h.endian_tag != kBinaryGraphEndianTag) {
    return Status::Corruption(path + ": bad endian tag");
  }
  if (h.version == 0 || h.version > kBinaryGraphVersion) {
    return Status::Corruption(path + ": unsupported segment version " +
                              std::to_string(h.version));
  }
  if (h.type_widths != kBinaryGraphTypeWidths) {
    return Status::Corruption(path +
                              ": segment type widths do not match this build");
  }
  if ((h.flags & kBinaryGraphShardSegmentFlag) == 0) {
    return Status::Corruption(path + ": not flagged as a shard segment "
                              "(manifest points at a monolithic image?)");
  }
  const bool weighted = (h.flags & kBinaryGraphWeightedFlag) != 0;
  if (weighted != mf.weighted) {
    return Status::Corruption(path + ": segment weightedness disagrees with "
                              "the manifest");
  }
  const uint64_t n_i = info.vertex_end - info.vertex_begin;
  const uint64_t m_i = info.edge_end - info.edge_begin;
  if (h.num_vertices != n_i || h.num_edges != m_i) {
    return Status::Corruption(path + ": segment n/m disagree with the "
                              "manifest shard ranges");
  }
  const uint64_t want =
      info.edge_begin * sizeof(vertex_id) % PageBytes();
  auto section_ok = [&](uint64_t start, uint64_t bytes, uint64_t align) {
    return start >= sizeof(BinaryGraphHeader) && start % align == 0 &&
           start <= file_size && bytes <= file_size - start;
  };
  if (!section_ok(h.offsets_start, (n_i + 1) * sizeof(edge_offset),
                  sizeof(edge_offset))) {
    return Status::Corruption(path + ": offsets section out of bounds "
                              "(truncated segment?)");
  }
  if (!section_ok(h.neighbors_start, m_i * sizeof(vertex_id),
                  sizeof(vertex_id)) ||
      h.neighbors_start % PageBytes() != want) {
    return Status::Corruption(path + ": neighbors section out of bounds or "
                              "not page-congruent to the shard edge range");
  }
  if (weighted) {
    if (!section_ok(h.weights_start, m_i * sizeof(weight_t),
                    sizeof(weight_t)) ||
        h.weights_start % PageBytes() != want) {
      return Status::Corruption(path + ": weights section out of bounds or "
                                "not page-congruent to the shard edge range");
    }
  } else if (h.weights_start != 0) {
    return Status::Corruption(path + ": unweighted segment carries a weights "
                              "section offset");
  }
  return Status::OK();
}

}  // namespace

ShardedGraphStorage::~ShardedGraphStorage() {
  if (base_ != nullptr) ::munmap(base_, total_bytes_);
}

std::pair<void*, size_t> ShardedGraphStorage::PageSpan(uint64_t offset,
                                                       uint64_t bytes) const {
  if (base_ == nullptr || offset >= total_bytes_) return {nullptr, 0};
  uint64_t end = std::min<uint64_t>(total_bytes_, offset + bytes);
  uint64_t begin = AlignDownPage(offset);
  return {static_cast<uint8_t*>(base_) + begin,
          static_cast<size_t>(end - begin)};
}

void ShardedGraphStorage::AdviseWillNeed(uint64_t offset,
                                         uint64_t bytes) const {
  auto [addr, len] = PageSpan(offset, bytes);
  if (len > 0) (void)::madvise(addr, len, MADV_WILLNEED);
}

void ShardedGraphStorage::AdviseDontNeed(uint64_t offset,
                                         uint64_t bytes) const {
  // MADV_DONTNEED zeroes anonymous pages, and the shard-boundary pages of
  // the assembled region are anonymous copies - dropping those would
  // corrupt the CSR. Restrict the advice to whole pages strictly inside
  // each shard's file-backed interior; boundary pages (at most one per
  // shard per section) just stay resident.
  auto [addr, len] = PageSpan(offset, bytes);
  if (len == 0) return;
  const uint64_t begin =
      static_cast<uint64_t>(static_cast<uint8_t*>(addr) -
                            static_cast<uint8_t*>(base_));
  const uint64_t end = begin + len;
  auto drop_interior = [&](uint64_t sec_lo, uint64_t sec_hi) {
    const uint64_t lo = AlignUpPage(std::max(begin, sec_lo));
    const uint64_t hi = AlignDownPage(std::min(end, sec_hi));
    if (lo < hi) {
      (void)::madvise(static_cast<uint8_t*>(base_) + lo,
                      static_cast<size_t>(hi - lo), MADV_DONTNEED);
    }
  };
  for (uint32_t s = 0; s < shard_count(); ++s) {
    const uint64_t e0 = edge_starts_[s] * sizeof(vertex_id);
    const uint64_t e1 = edge_starts_[s + 1] * sizeof(vertex_id);
    drop_interior(AlignUpPage(e0), AlignDownPage(e1));
    if (weights_base_ != 0) {
      drop_interior(weights_base_ + AlignUpPage(e0),
                    weights_base_ + AlignDownPage(e1));
    }
  }
}

uint64_t ShardedGraphStorage::CountResidentPages(uint64_t offset,
                                                 uint64_t bytes) const {
  auto [addr, len] = PageSpan(offset, bytes);
  if (len == 0) return 0;
  const uint64_t page = PageBytes();
  const size_t pages = static_cast<size_t>((len + page - 1) / page);
  std::vector<unsigned char> vec(pages);
  if (::mincore(addr, len, vec.data()) != 0) return 0;
  uint64_t resident = 0;
  for (unsigned char byte : vec) resident += (byte & 1u);
  return resident;
}

Result<Graph> MapShardedGraph(const std::string& manifest_path) {
  Result<ShardManifest> parsed = ReadShardManifest(manifest_path);
  if (!parsed.ok()) return parsed.status();
  const ShardManifest mf = parsed.TakeValue();
  const std::string dir = [&] {
    size_t slash = manifest_path.find_last_of('/');
    return slash == std::string::npos ? std::string()
                                      : manifest_path.substr(0, slash + 1);
  }();

  const uint64_t n = mf.num_vertices;
  const uint64_t m = mf.num_edges;
  auto storage =
      std::shared_ptr<ShardedGraphStorage>(new ShardedGraphStorage());
  storage->offsets_.assign(n + 1, 0);
  storage->vertex_starts_.reserve(mf.shards.size() + 1);
  storage->edge_starts_.reserve(mf.shards.size() + 1);
  for (const ShardInfo& info : mf.shards) {
    storage->vertex_starts_.push_back(info.vertex_begin);
    storage->edge_starts_.push_back(info.edge_begin);
  }
  storage->vertex_starts_.push_back(static_cast<vertex_id>(n));
  storage->edge_starts_.push_back(static_cast<edge_offset>(m));

  // One reservation covering the dense neighbor array and (page-aligned
  // above it) the dense weight array. MAP_NORESERVE: all but the boundary
  // pages are immediately replaced by file mappings.
  const uint64_t nb_bytes = m * sizeof(vertex_id);
  const uint64_t weights_base = mf.weighted ? AlignUpPage(nb_bytes) : 0;
  const uint64_t total =
      mf.weighted ? weights_base + m * sizeof(weight_t) : nb_bytes;
  uint8_t* region = nullptr;
  if (total > 0) {
    void* base =
        ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
               MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (base == MAP_FAILED) {
      return Status::IOError("cannot reserve " + std::to_string(total) +
                             " bytes for " + manifest_path + ": " +
                             ErrnoString());
    }
    region = static_cast<uint8_t*>(base);
    storage->base_ = base;
    storage->total_bytes_ = total;
    storage->weights_base_ = weights_base;
  }

  std::vector<edge_offset> local;
  for (const ShardInfo& info : mf.shards) {
    const std::string path = dir + info.segment_path;
    Fd f;
    f.fd = ::open(path.c_str(), O_RDONLY);
    if (f.fd < 0) {
      return Status::IOError("cannot open segment " + path + ": " +
                             ErrnoString());
    }
    struct stat st;
    if (::fstat(f.fd, &st) != 0 || !S_ISREG(st.st_mode)) {
      return Status::IOError("cannot stat segment " + path +
                             " (or not a regular file)");
    }
    if (static_cast<uint64_t>(st.st_size) != info.file_bytes) {
      return Status::Corruption(
          path + ": segment is " + std::to_string(st.st_size) +
          " bytes, manifest records " + std::to_string(info.file_bytes) +
          " (truncated or replaced segment)");
    }
    BinaryGraphHeader h;
    SAGE_RETURN_IF_ERROR(
        PreadExact(f.fd, &h, sizeof(h), 0, path, "segment header"));
    SAGE_RETURN_IF_ERROR(
        ValidateSegmentHeader(h, info, mf, info.file_bytes, path));

    // The offsets section feeds both the global offset array and the
    // manifest's structural checksum.
    const uint64_t n_i = info.vertex_end - info.vertex_begin;
    const uint64_t m_i = info.edge_end - info.edge_begin;
    local.resize(n_i + 1);
    SAGE_RETURN_IF_ERROR(PreadExact(f.fd, local.data(),
                                    (n_i + 1) * sizeof(edge_offset),
                                    h.offsets_start, path, "offsets section"));
    uint64_t sum = Fnv1a64(&h, sizeof(h));
    sum = Fnv1a64(local.data(), local.size() * sizeof(edge_offset), sum);
    if (sum != info.checksum) {
      return Status::Corruption(path + ": segment checksum mismatch "
                                "(corrupt header or offsets section)");
    }
    if (local[0] != 0 || local[n_i] != m_i) {
      return Status::Corruption(path + ": shard-local offsets do not span "
                                "the manifest edge range");
    }
    for (uint64_t v = 0; v < n_i; ++v) {
      if (local[v] > local[v + 1]) {
        return Status::Corruption(path +
                                  ": offsets are not non-decreasing");
      }
    }
    for (uint64_t v = 0; v <= n_i; ++v) {
      storage->offsets_[info.vertex_begin + v] = info.edge_begin + local[v];
    }

    SAGE_RETURN_IF_ERROR(SpliceSection(
        region, info.edge_begin * sizeof(vertex_id),
        info.edge_end * sizeof(vertex_id), f.fd, h.neighbors_start, path,
        "neighbors section"));
    if (mf.weighted) {
      SAGE_RETURN_IF_ERROR(SpliceSection(
          region, weights_base + info.edge_begin * sizeof(weight_t),
          weights_base + info.edge_end * sizeof(weight_t), f.fd,
          h.weights_start, path, "weights section"));
    }
  }

  if (region != nullptr) {
    // Seal the assembled region read-only: from here on it behaves exactly
    // like the monolithic read-only mapping.
    if (::mprotect(region, total, PROT_READ) != 0) {
      return Status::IOError("mprotect failed on assembled mapping for " +
                             manifest_path + ": " + ErrnoString());
    }
  }
  storage->neighbors_ = {reinterpret_cast<const vertex_id*>(region),
                         static_cast<size_t>(m)};
  if (mf.weighted) {
    storage->weights_ = {
        reinterpret_cast<const weight_t*>(region + weights_base),
        static_cast<size_t>(m)};
  }

  // Same structure scan as the monolithic readers: no neighbor id may
  // index off the DRAM arrays algorithms allocate per vertex.
  {
    std::span<const vertex_id> neighbors = storage->neighbors_;
    constexpr size_t kChunk = 1 << 16;
    std::atomic<bool> bad_neighbor{false};
    parallel_for(0, (m + kChunk - 1) / kChunk, [&](size_t c) {
      const size_t lo = c * kChunk,
                   hi = std::min(static_cast<size_t>(m), lo + kChunk);
      vertex_id max_id = 0;
      for (size_t e = lo; e < hi; ++e) {
        max_id = std::max(max_id, neighbors[e]);
      }
      if (max_id >= n) bad_neighbor.store(true, std::memory_order_relaxed);
    });
    if (m > 0 && bad_neighbor.load(std::memory_order_relaxed)) {
      return Status::Corruption(manifest_path +
                                ": neighbor id out of range in a segment");
    }
  }
  return Graph(std::move(storage), mf.symmetric);
}

}  // namespace sage
