#include "graph/delta.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "parallel/parallel.h"
#include "parallel/primitives.h"

namespace sage {

// --- graph.h overlay hooks (declared in internal_overlay) -----------------

namespace internal_overlay {

OverlayList Find(const DeltaOverlay& overlay, vertex_id v) {
  const DeltaOverlay::VertexList* list = overlay.Find(v);
  SAGE_CHECK_MSG(list != nullptr,
                 "overlay list missing for touched vertex %u",
                 static_cast<unsigned>(v));
  return OverlayList{
      list->neighbors.data(),
      list->weights.empty() ? nullptr : list->weights.data(),
      static_cast<vertex_id>(list->neighbors.size())};
}

const uint64_t* TouchedBits(const DeltaOverlay& overlay) {
  return overlay.touched_bits().data();
}

uint64_t OverlayNumEdges(const DeltaOverlay& overlay) {
  return overlay.num_edges();
}

uint64_t OverlayDeltaEdges(const DeltaOverlay& overlay) {
  return overlay.delta_edges();
}

}  // namespace internal_overlay

// --- DeltaLog -------------------------------------------------------------

DeltaLog::DeltaLog(int shards)
    : num_shards_(std::max(1, shards)),
      shards_(std::make_unique<Shard[]>(static_cast<size_t>(num_shards_))) {}

uint64_t DeltaLog::Append(std::span<const EdgeUpdate> updates) {
  if (updates.empty()) return 0;
  // One fetch_add claims a contiguous sequence block for the whole batch,
  // so a batch's updates stay ordered relative to each other even when
  // they scatter across shards.
  const uint64_t first = next_seq_.fetch_add(updates.size());
  // Group by shard before locking: each shard's mutex is taken once per
  // batch, not once per update.
  std::vector<std::vector<std::pair<uint64_t, EdgeUpdate>>> buckets(
      static_cast<size_t>(num_shards_));
  for (size_t i = 0; i < updates.size(); ++i) {
    size_t shard = updates[i].u % static_cast<vertex_id>(num_shards_);
    buckets[shard].emplace_back(first + i, updates[i]);
  }
  for (int s = 0; s < num_shards_; ++s) {
    if (buckets[static_cast<size_t>(s)].empty()) continue;
    MutexLock lock(shards_[s].mu);
    auto& bucket = buckets[static_cast<size_t>(s)];
    shards_[s].entries.insert(shards_[s].entries.end(), bucket.begin(),
                              bucket.end());
  }
  pending_.fetch_add(updates.size(), std::memory_order_relaxed);
  return first + updates.size() - 1;
}

std::vector<EdgeUpdate> DeltaLog::Drain(uint64_t* last_seq) {
  std::vector<std::pair<uint64_t, EdgeUpdate>> all;
  for (int s = 0; s < num_shards_; ++s) {
    MutexLock lock(shards_[s].mu);
    all.insert(all.end(), shards_[s].entries.begin(), shards_[s].entries.end());
    shards_[s].entries.clear();
  }
  pending_.fetch_sub(all.size(), std::memory_order_relaxed);
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<EdgeUpdate> out;
  out.reserve(all.size());
  for (auto& [seq, update] : all) {
    if (last_seq != nullptr && seq > *last_seq) *last_seq = seq;
    out.push_back(update);
  }
  return out;
}

// --- ApplyUpdateBatch -----------------------------------------------------

namespace {

/// One directed mutation slot, ordered by submission within its source.
struct DirectedSlot {
  vertex_id src;
  vertex_id dst;
  weight_t w;
  bool remove;
  uint64_t ord;
};

/// Seeds `list` from the base adjacency of `src`, canonicalized to sorted
/// order (builder output already is; arbitrary file inputs may not be).
void SeedFromBase(const Graph& base, vertex_id src,
                  DeltaOverlay::VertexList& list) {
  std::span<const vertex_id> nbrs = base.NeighborsUncharged(src);
  list.neighbors.assign(nbrs.begin(), nbrs.end());
  if (base.weighted()) {
    std::span<const edge_offset> offsets = base.raw_offsets();
    std::span<const weight_t> weights = base.raw_weights();
    list.weights.assign(weights.begin() + offsets[src],
                        weights.begin() + offsets[src + 1]);
  }
  if (!std::is_sorted(list.neighbors.begin(), list.neighbors.end())) {
    if (list.weights.empty()) {
      std::sort(list.neighbors.begin(), list.neighbors.end());
    } else {
      std::vector<std::pair<vertex_id, weight_t>> pairs(list.neighbors.size());
      for (size_t i = 0; i < pairs.size(); ++i)
        pairs[i] = {list.neighbors[i], list.weights[i]};
      std::stable_sort(pairs.begin(), pairs.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
      for (size_t i = 0; i < pairs.size(); ++i) {
        list.neighbors[i] = pairs[i].first;
        list.weights[i] = pairs[i].second;
      }
    }
  }
}

/// Applies one slot to a sorted list. Returns the change in directed edge
/// count (negative for removals) and bumps `structural` for every slot
/// inserted or erased.
int64_t ApplySlot(const DirectedSlot& slot, bool weighted,
                  DeltaOverlay::VertexList& list, uint64_t& structural) {
  auto pos = std::lower_bound(list.neighbors.begin(), list.neighbors.end(),
                              slot.dst);
  size_t idx = static_cast<size_t>(pos - list.neighbors.begin());
  if (slot.remove) {
    size_t erased = 0;
    while (idx + erased < list.neighbors.size() &&
           list.neighbors[idx + erased] == slot.dst) {
      ++erased;  // duplicate parallel edges all go
    }
    if (erased == 0) return 0;
    list.neighbors.erase(pos, pos + static_cast<int64_t>(erased));
    if (weighted) {
      list.weights.erase(list.weights.begin() + static_cast<int64_t>(idx),
                         list.weights.begin() +
                             static_cast<int64_t>(idx + erased));
    }
    structural += erased;
    return -static_cast<int64_t>(erased);
  }
  if (pos != list.neighbors.end() && *pos == slot.dst) {
    // Insert of an existing edge: weight upsert, structure unchanged.
    if (weighted) list.weights[idx] = slot.w;
    return 0;
  }
  list.neighbors.insert(pos, slot.dst);
  if (weighted) {
    list.weights.insert(list.weights.begin() + static_cast<int64_t>(idx),
                        slot.w);
  }
  structural += 1;
  return 1;
}

}  // namespace

Result<std::shared_ptr<const DeltaOverlay>> ApplyUpdateBatch(
    const Graph& base, const std::shared_ptr<const DeltaOverlay>& prev,
    std::span<const EdgeUpdate> updates) {
  SAGE_CHECK_MSG(!base.has_overlay(),
                 "ApplyUpdateBatch: base must be overlay-free (flatten or "
                 "compact first)");
  const vertex_id n = base.num_vertices();
  for (const EdgeUpdate& e : updates) {
    if (e.u >= n || e.v >= n) {
      return Status::InvalidArgument(
          "edge update (" + std::to_string(e.u) + ", " + std::to_string(e.v) +
          ") references a vertex >= n=" + std::to_string(n) +
          " (updates cannot grow the vertex set)");
    }
  }
  if (prev != nullptr) SAGE_CHECK(prev->num_vertices() == n);

  // Expand to directed slots in submission order: symmetric graphs apply
  // both directions so the view stays symmetric.
  std::vector<DirectedSlot> slots;
  slots.reserve(updates.size() * (base.symmetric() ? 2 : 1));
  uint64_t ord = 0;
  for (const EdgeUpdate& e : updates) {
    slots.push_back({e.u, e.v, e.w, e.remove, ord++});
    if (base.symmetric() && e.u != e.v) {
      slots.push_back({e.v, e.u, e.w, e.remove, ord++});
    }
  }
  std::sort(slots.begin(), slots.end(),
            [](const DirectedSlot& a, const DirectedSlot& b) {
              return a.src != b.src ? a.src < b.src : a.ord < b.ord;
            });

  std::shared_ptr<DeltaOverlay> next(new DeltaOverlay());
  next->n_ = n;
  if (prev != nullptr) {
    // Copy-on-write from the previous overlay: epochs still serving `prev`
    // keep their lists untouched.
    next->touched_bits_ = prev->touched_bits_;
    next->lists_ = prev->lists_;
    next->num_edges_ = prev->num_edges_;
    next->delta_edges_ = prev->delta_edges_;
  } else {
    next->touched_bits_.assign((static_cast<size_t>(n) >> 6) + 1, 0);
    next->num_edges_ = base.num_edges();
    next->delta_edges_ = 0;
  }

  // Group slots per source vertex; create (or COW-find) each list
  // sequentially, then merge groups in parallel - each group owns its
  // VertexList and the map is not mutated during the parallel phase.
  struct Group {
    size_t begin, end;
    DeltaOverlay::VertexList* list;
    bool fresh;  // seeded from base (untouched before this batch)
    int64_t edge_delta = 0;
    uint64_t structural = 0;
  };
  std::vector<Group> groups;
  for (size_t i = 0; i < slots.size();) {
    size_t j = i;
    while (j < slots.size() && slots[j].src == slots[i].src) ++j;
    vertex_id src = slots[i].src;
    bool fresh = !next->touched(src);
    if (fresh) {
      next->touched_bits_[src >> 6] |= 1ull << (src & 63);
    }
    groups.push_back(Group{i, j, &next->lists_[src], fresh});
    i = j;
  }
  const bool weighted = base.weighted();
  parallel_for(0, groups.size(), [&](size_t gi) {
    Group& group = groups[gi];
    if (group.fresh) SeedFromBase(base, slots[group.begin].src, *group.list);
    for (size_t k = group.begin; k < group.end; ++k) {
      group.edge_delta +=
          ApplySlot(slots[k], weighted, *group.list, group.structural);
    }
  });
  for (const Group& group : groups) {
    next->num_edges_ =
        static_cast<uint64_t>(static_cast<int64_t>(next->num_edges_) +
                              group.edge_delta);
    next->delta_edges_ += group.structural;
  }
  return std::shared_ptr<const DeltaOverlay>(std::move(next));
}

Graph MakeOverlayGraph(const Graph& base,
                       std::shared_ptr<const DeltaOverlay> overlay) {
  SAGE_CHECK(base.storage() != nullptr);
  return Graph(
      std::make_shared<OverlayGraphStorage>(base.storage(), std::move(overlay)),
      base.symmetric());
}

Graph FlattenOverlay(const Graph& g) {
  if (!g.has_overlay()) return g;
  const vertex_id n = g.num_vertices();
  std::vector<edge_offset> offsets(static_cast<size_t>(n) + 1);
  parallel_for(0, n, [&](size_t v) {
    offsets[v] = g.degree_uncharged(static_cast<vertex_id>(v));
  });
  offsets[n] = 0;
  edge_offset total = scan_add_inplace(offsets);
  SAGE_CHECK(total == g.num_edges());
  std::vector<vertex_id> neighbors(total);
  std::vector<weight_t> weights(g.weighted() ? total : 0);
  parallel_for(0, n, [&](size_t v) {
    vertex_id u = static_cast<vertex_id>(v);
    std::span<const vertex_id> nbrs = g.NeighborsUncharged(u);
    std::copy(nbrs.begin(), nbrs.end(), neighbors.begin() + offsets[v]);
    if (!weights.empty()) {
      for (size_t i = 0; i < nbrs.size(); ++i) {
        weights[offsets[v] + i] = g.weight_at(u, static_cast<vertex_id>(i));
      }
    }
  });
  return Graph(std::move(offsets), std::move(neighbors), std::move(weights),
               g.symmetric());
}

Result<std::vector<EdgeUpdate>> ReadEdgeUpdates(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open update file: " + path);
  std::vector<EdgeUpdate> updates;
  std::string line;
  uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream tokens(line);
    std::string first;
    if (!(tokens >> first)) continue;  // blank line
    if (first[0] == '#' || first[0] == '%') continue;
    bool remove = false;
    unsigned long long u = 0, v = 0, w = 1;
    auto parse_u64 = [&](const std::string& tok, unsigned long long* out) {
      size_t used = 0;
      try {
        *out = std::stoull(tok, &used);
      } catch (...) {
        return false;
      }
      return used == tok.size();
    };
    if (first == "+" || first == "-") {
      remove = first == "-";
      if (!(tokens >> first)) {
        return Status::Corruption("update file " + path + " line " +
                                  std::to_string(lineno) +
                                  ": missing endpoints after '" +
                                  (remove ? "-" : "+") + "'");
      }
    }
    std::string second;
    if (!parse_u64(first, &u) || !(tokens >> second) ||
        !parse_u64(second, &v)) {
      return Status::Corruption("update file " + path + " line " +
                                std::to_string(lineno) +
                                ": expected 'u v [w]', got: " + line);
    }
    std::string third;
    if (tokens >> third) {
      if (remove || !parse_u64(third, &w)) {
        return Status::Corruption("update file " + path + " line " +
                                  std::to_string(lineno) +
                                  ": unexpected trailing token: " + third);
      }
    }
    if (u > kNoVertex || v > kNoVertex) {
      return Status::Corruption("update file " + path + " line " +
                                std::to_string(lineno) +
                                ": vertex id out of range");
    }
    EdgeUpdate e;
    e.u = static_cast<vertex_id>(u);
    e.v = static_cast<vertex_id>(v);
    e.w = static_cast<weight_t>(w);
    e.remove = remove;
    updates.push_back(e);
  }
  return updates;
}

}  // namespace sage
