// Graph statistics used by Table 2 and Figure 2 of the paper (vertex/edge
// counts, average and maximum degree, degree distribution).
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "parallel/primitives.h"

namespace sage {

/// Summary statistics of a graph.
struct GraphStats {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;   // directed edge slots (2m when symmetrized)
  double avg_degree = 0.0;  // m/n over stored (directed) edges
  uint64_t max_degree = 0;
  uint64_t num_isolated = 0;  // vertices with degree 0

  std::string ToString() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "n=%llu m=%llu d_avg=%.1f d_max=%llu isolated=%llu",
                  static_cast<unsigned long long>(num_vertices),
                  static_cast<unsigned long long>(num_edges), avg_degree,
                  static_cast<unsigned long long>(max_degree),
                  static_cast<unsigned long long>(num_isolated));
    return buf;
  }
};

/// Computes summary statistics in parallel (uncharged; offline analysis).
template <typename GraphT>
GraphStats ComputeStats(const GraphT& g) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  s.avg_degree = g.avg_degree();
  s.max_degree = reduce_max<uint64_t>(
      g.num_vertices(),
      [&](size_t v) {
        return g.degree_uncharged(static_cast<vertex_id>(v));
      },
      0);
  s.num_isolated = reduce_add<uint64_t>(g.num_vertices(), [&](size_t v) {
    return g.degree_uncharged(static_cast<vertex_id>(v)) == 0 ? 1 : 0;
  });
  return s;
}

}  // namespace sage
