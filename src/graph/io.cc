#include "graph/io.h"

#include <cctype>
#include <cstdio>
#include <vector>

#include "graph/builder.h"

namespace sage {

namespace {

/// Reads a whole file into a string.
Result<std::string> Slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string data(static_cast<size_t>(size), '\0');
  size_t got = std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (got != data.size()) return Status::IOError("short read on " + path);
  return data;
}

/// Incremental integer tokenizer over a text buffer.
class Tokens {
 public:
  explicit Tokens(const std::string& data) : data_(data) {}

  /// Skips to the next token; returns false at end of input.
  bool Next(uint64_t* out) {
    while (pos_ < data_.size() &&
           !std::isdigit(static_cast<unsigned char>(data_[pos_]))) {
      // Skip comment lines entirely.
      if (data_[pos_] == '#' || data_[pos_] == '%') {
        while (pos_ < data_.size() && data_[pos_] != '\n') ++pos_;
      } else {
        ++pos_;
      }
    }
    if (pos_ >= data_.size()) return false;
    uint64_t v = 0;
    while (pos_ < data_.size() &&
           std::isdigit(static_cast<unsigned char>(data_[pos_]))) {
      v = v * 10 + static_cast<uint64_t>(data_[pos_] - '0');
      ++pos_;
    }
    *out = v;
    return true;
  }

  /// Reads the header word (letters) at the current position.
  std::string Word() {
    while (pos_ < data_.size() &&
           std::isspace(static_cast<unsigned char>(data_[pos_]))) {
      ++pos_;
    }
    size_t start = pos_;
    while (pos_ < data_.size() &&
           std::isalpha(static_cast<unsigned char>(data_[pos_]))) {
      ++pos_;
    }
    return data_.substr(start, pos_ - start);
  }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace

Result<Graph> ReadAdjacencyGraph(const std::string& path, bool symmetric) {
  auto data = Slurp(path);
  if (!data.ok()) return data.status();
  Tokens toks(data.ValueOrDie());
  std::string header = toks.Word();
  bool weighted;
  if (header == "AdjacencyGraph") {
    weighted = false;
  } else if (header == "WeightedAdjacencyGraph") {
    weighted = true;
  } else {
    return Status::Corruption(path + ": unknown header '" + header + "'");
  }
  uint64_t n = 0, m = 0;
  if (!toks.Next(&n) || !toks.Next(&m)) {
    return Status::Corruption(path + ": missing n/m");
  }
  std::vector<edge_offset> offsets(n + 1);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t off;
    if (!toks.Next(&off)) return Status::Corruption(path + ": short offsets");
    if (off > m) return Status::Corruption(path + ": offset out of range");
    offsets[i] = off;
  }
  offsets[n] = m;
  std::vector<vertex_id> neighbors(m);
  for (uint64_t i = 0; i < m; ++i) {
    uint64_t v;
    if (!toks.Next(&v)) return Status::Corruption(path + ": short edges");
    if (v >= n) return Status::Corruption(path + ": neighbor id out of range");
    neighbors[i] = static_cast<vertex_id>(v);
  }
  std::vector<weight_t> weights;
  if (weighted) {
    weights.resize(m);
    for (uint64_t i = 0; i < m; ++i) {
      uint64_t w;
      if (!toks.Next(&w)) return Status::Corruption(path + ": short weights");
      weights[i] = static_cast<weight_t>(w);
    }
  }
  return Graph(std::move(offsets), std::move(neighbors), std::move(weights),
               symmetric);
}

Status WriteAdjacencyGraph(const Graph& g, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const auto& offsets = g.raw_offsets();
  const auto& neighbors = g.raw_neighbors();
  const auto& weights = g.raw_weights();
  std::fprintf(f, "%s\n", g.weighted() ? "WeightedAdjacencyGraph"
                                       : "AdjacencyGraph");
  std::fprintf(f, "%u\n%llu\n", g.num_vertices(),
               static_cast<unsigned long long>(g.num_edges()));
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    std::fprintf(f, "%llu\n", static_cast<unsigned long long>(offsets[v]));
  }
  for (edge_offset e = 0; e < g.num_edges(); ++e) {
    std::fprintf(f, "%u\n", neighbors[e]);
  }
  if (g.weighted()) {
    for (edge_offset e = 0; e < g.num_edges(); ++e) {
      std::fprintf(f, "%u\n", weights[e]);
    }
  }
  std::fclose(f);
  return Status::OK();
}

Result<Graph> ReadEdgeList(const std::string& path, bool weighted) {
  auto data = Slurp(path);
  if (!data.ok()) return data.status();
  Tokens toks(data.ValueOrDie());
  std::vector<WeightedEdge> edges;
  uint64_t max_id = 0;
  for (;;) {
    uint64_t u, v, w = 1;
    if (!toks.Next(&u)) break;
    if (!toks.Next(&v)) {
      return Status::Corruption(path + ": odd number of endpoints");
    }
    if (weighted && !toks.Next(&w)) {
      return Status::Corruption(path + ": missing weight");
    }
    max_id = std::max({max_id, u, v});
    edges.push_back({static_cast<vertex_id>(u), static_cast<vertex_id>(v),
                     static_cast<weight_t>(w)});
  }
  if (edges.empty()) return Status::Corruption(path + ": no edges");
  BuildOptions opts;
  opts.keep_weights = weighted;
  return GraphBuilder::Build(static_cast<vertex_id>(max_id + 1),
                             std::move(edges), opts);
}

}  // namespace sage
