#include "graph/io.h"

#include <sys/stat.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include "graph/builder.h"
#include "graph/delta.h"
#include "graph/sharded_storage.h"

namespace sage {

namespace {

/// Reads a whole file into a string. A short fread is only accepted as a
/// small file when the stream reports clean EOF; ferror (bad media, EISDIR,
/// NFS hiccups) surfaces as IOError with the errno context, so callers can
/// tell a truncated graph from an unreadable one.
Result<std::string> Slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  // A directory opens fine but reports a nonsense seekable size; catch it
  // before sizing the buffer off ftell.
  struct stat st;
  if (::fstat(::fileno(f), &st) == 0 && !S_ISREG(st.st_mode)) {
    std::fclose(f);
    return Status::IOError("cannot read " + path +
                           ": not a regular file");
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    Status s = Status::IOError("seek failed on " + path + ": " +
                               std::strerror(errno));
    std::fclose(f);
    return s;
  }
  long size = std::ftell(f);
  if (size < 0) {
    Status s = Status::IOError("cannot size " + path + ": " +
                               std::strerror(errno));
    std::fclose(f);
    return s;
  }
  std::fseek(f, 0, SEEK_SET);
  std::string data(static_cast<size_t>(size), '\0');
  size_t got = std::fread(data.data(), 1, data.size(), f);
  const bool read_error = std::ferror(f) != 0;
  const int read_errno = errno;
  std::fclose(f);
  if (read_error) {
    return Status::IOError("read error on " + path + ": " +
                           std::strerror(read_errno));
  }
  if (got != data.size()) {
    // Clean EOF before the sized length: the file shrank between ftell and
    // fread (concurrent truncation), not an IO fault.
    return Status::IOError("short read on " + path + " (got " +
                           std::to_string(got) + " of " +
                           std::to_string(data.size()) +
                           " bytes; file truncated mid-read?)");
  }
  return data;
}

/// Incremental integer tokenizer over a text buffer.
class Tokens {
 public:
  explicit Tokens(const std::string& data) : data_(data) {}

  /// Skips to the next token; returns false at end of input.
  bool Next(uint64_t* out) {
    while (pos_ < data_.size() &&
           !std::isdigit(static_cast<unsigned char>(data_[pos_]))) {
      // Skip comment lines entirely.
      if (data_[pos_] == '#' || data_[pos_] == '%') {
        while (pos_ < data_.size() && data_[pos_] != '\n') ++pos_;
      } else {
        ++pos_;
      }
    }
    if (pos_ >= data_.size()) return false;
    uint64_t v = 0;
    while (pos_ < data_.size() &&
           std::isdigit(static_cast<unsigned char>(data_[pos_]))) {
      v = v * 10 + static_cast<uint64_t>(data_[pos_] - '0');
      ++pos_;
    }
    *out = v;
    return true;
  }

  /// Reads the header word (letters) at the current position.
  std::string Word() {
    while (pos_ < data_.size() &&
           std::isspace(static_cast<unsigned char>(data_[pos_]))) {
      ++pos_;
    }
    size_t start = pos_;
    while (pos_ < data_.size() &&
           std::isalpha(static_cast<unsigned char>(data_[pos_]))) {
      ++pos_;
    }
    return data_.substr(start, pos_ - start);
  }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace

Result<Graph> ReadAdjacencyGraph(const std::string& path, bool symmetric) {
  auto data = Slurp(path);
  if (!data.ok()) return data.status();
  Tokens toks(data.ValueOrDie());
  std::string header = toks.Word();
  bool weighted;
  if (header == "AdjacencyGraph") {
    weighted = false;
  } else if (header == "WeightedAdjacencyGraph") {
    weighted = true;
  } else {
    return Status::Corruption(path + ": unknown header '" + header + "'");
  }
  uint64_t n = 0, m = 0;
  if (!toks.Next(&n) || !toks.Next(&m)) {
    return Status::Corruption(path + ": missing n/m");
  }
  std::vector<edge_offset> offsets(n + 1);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t off;
    if (!toks.Next(&off)) return Status::Corruption(path + ": short offsets");
    if (off > m) return Status::Corruption(path + ": offset out of range");
    offsets[i] = off;
  }
  offsets[n] = m;
  std::vector<vertex_id> neighbors(m);
  for (uint64_t i = 0; i < m; ++i) {
    uint64_t v;
    if (!toks.Next(&v)) return Status::Corruption(path + ": short edges");
    if (v >= n) return Status::Corruption(path + ": neighbor id out of range");
    neighbors[i] = static_cast<vertex_id>(v);
  }
  std::vector<weight_t> weights;
  if (weighted) {
    weights.resize(m);
    for (uint64_t i = 0; i < m; ++i) {
      uint64_t w;
      if (!toks.Next(&w)) return Status::Corruption(path + ": short weights");
      weights[i] = static_cast<weight_t>(w);
    }
  }
  return Graph(std::move(offsets), std::move(neighbors), std::move(weights),
               symmetric);
}

Status WriteAdjacencyGraph(const Graph& g, const std::string& path) {
  // The raw spans below are the base image only for overlay graphs:
  // materialize the merged view first.
  if (g.has_overlay()) return WriteAdjacencyGraph(FlattenOverlay(g), path);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const auto& offsets = g.raw_offsets();
  const auto& neighbors = g.raw_neighbors();
  const auto& weights = g.raw_weights();
  std::fprintf(f, "%s\n", g.weighted() ? "WeightedAdjacencyGraph"
                                       : "AdjacencyGraph");
  std::fprintf(f, "%u\n%llu\n", g.num_vertices(),
               static_cast<unsigned long long>(g.num_edges()));
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    std::fprintf(f, "%llu\n", static_cast<unsigned long long>(offsets[v]));
  }
  for (edge_offset e = 0; e < g.num_edges(); ++e) {
    std::fprintf(f, "%u\n", neighbors[e]);
  }
  if (g.weighted()) {
    for (edge_offset e = 0; e < g.num_edges(); ++e) {
      std::fprintf(f, "%u\n", weights[e]);
    }
  }
  std::fclose(f);
  return Status::OK();
}

const char* GraphFileFormatName(GraphFileFormat format) {
  switch (format) {
    case GraphFileFormat::kUnknown:
      return "unknown";
    case GraphFileFormat::kAdjacencyGraph:
      return "AdjacencyGraph";
    case GraphFileFormat::kWeightedAdjacencyGraph:
      return "WeightedAdjacencyGraph";
    case GraphFileFormat::kEdgeList:
      return "edge-list";
    case GraphFileFormat::kWeightedEdgeList:
      return "weighted-edge-list";
    case GraphFileFormat::kBinaryCsr:
      return "binary-csr";
    case GraphFileFormat::kShardManifest:
      return "shard-manifest";
  }
  return "unknown";
}

namespace {

/// Extension-based fallback, used only when content sniffing is
/// inconclusive.
GraphFileFormat FormatFromExtension(const std::string& path) {
  if (path.ends_with(".bsadjx")) return GraphFileFormat::kShardManifest;
  if (path.ends_with(".bsadj")) return GraphFileFormat::kBinaryCsr;
  if (path.ends_with(".adj")) return GraphFileFormat::kAdjacencyGraph;
  if (path.ends_with(".wadj")) {
    return GraphFileFormat::kWeightedAdjacencyGraph;
  }
  if (path.ends_with(".el") || path.ends_with(".txt") ||
      path.ends_with(".edges")) {
    return GraphFileFormat::kEdgeList;
  }
  return GraphFileFormat::kUnknown;
}

/// DetectGraphFormat plus the raw sniffing evidence, for callers that need
/// to second-guess the heuristic (ReadGraphAuto's force_weighted).
struct SniffResult {
  GraphFileFormat format = GraphFileFormat::kUnknown;
  /// Integer columns counted on the first data line (0 if none).
  int first_line_columns = 0;
  /// The first data line extended past the sniff window, so
  /// first_line_columns is a lower bound, not a trustworthy count.
  bool line_truncated = false;
};

Result<SniffResult> SniffGraphFormat(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  char buf[4096];
  size_t got = std::fread(buf, 1, sizeof(buf), f);
  // A short read is only a small file when the stream hit clean EOF; an
  // ferror (EISDIR, bad media) must not be sniffed as an empty graph.
  const bool read_error = std::ferror(f) != 0;
  const int read_errno = errno;
  std::fclose(f);
  if (read_error) {
    return Status::IOError("read error on " + path + ": " +
                           std::strerror(read_errno));
  }
  std::string head(buf, got);
  SniffResult result;

  // The binary magic starts with a non-ASCII byte, so it can never collide
  // with the text paths below; check it first.
  if (HasBinaryGraphMagic(head.data(), head.size())) {
    result.format = GraphFileFormat::kBinaryCsr;
    return result;
  }

  // Skip leading whitespace and '#'/'%' comment lines.
  size_t pos = 0;
  while (pos < head.size()) {
    char c = head[pos];
    if (c == '#' || c == '%') {
      while (pos < head.size() && head[pos] != '\n') ++pos;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
    } else {
      break;
    }
  }

  if (pos < head.size() &&
      std::isalpha(static_cast<unsigned char>(head[pos]))) {
    size_t start = pos;
    while (pos < head.size() &&
           std::isalpha(static_cast<unsigned char>(head[pos]))) {
      ++pos;
    }
    std::string word = head.substr(start, pos - start);
    if (word == "AdjacencyGraph") {
      result.format = GraphFileFormat::kAdjacencyGraph;
    } else if (word == "WeightedAdjacencyGraph") {
      result.format = GraphFileFormat::kWeightedAdjacencyGraph;
    } else if (word == "BSADJX") {
      result.format = GraphFileFormat::kShardManifest;
    }
    // Textual content that is not a known header: the content contradicts
    // any extension hint, so report unknown rather than guessing.
    return result;
  }

  if (pos < head.size() &&
      std::isdigit(static_cast<unsigned char>(head[pos]))) {
    // Numeric first data line: count its integer columns. Two columns is
    // an edge list, three a weighted edge list; an even count tolerates
    // several "u v" pairs on one line (the readers are line-agnostic).
    size_t line_end = head.find('\n', pos);
    if (line_end == std::string::npos) {
      line_end = head.size();
      result.line_truncated = got == sizeof(buf);
    }
    int columns = 0;
    bool numeric = true;
    while (pos < line_end) {
      char c = head[pos];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++columns;
        while (pos < line_end &&
               std::isdigit(static_cast<unsigned char>(head[pos]))) {
          ++pos;
        }
      } else if (c == ' ' || c == '\t' || c == '\r') {
        ++pos;
      } else {
        numeric = false;
        break;
      }
    }
    if (numeric && columns > 0) {
      result.first_line_columns = columns;
      // A first line longer than the sniff window yields a partial column
      // count; classify it as a plain edge list (the common layout for
      // many-tokens-per-line files) rather than trusting the count.
      if (result.line_truncated) {
        result.format = GraphFileFormat::kEdgeList;
      } else if (columns == 3 ||
                 (columns % 3 == 0 && columns % 2 != 0)) {
        result.format = GraphFileFormat::kWeightedEdgeList;
      } else if (columns % 2 == 0) {
        result.format = GraphFileFormat::kEdgeList;
      }
    }
    // Numeric content the column rules can't classify (e.g. a lone count
    // header or five columns) is inconclusive: let the extension break
    // the tie, per the DetectGraphFormat contract.
    if (result.format == GraphFileFormat::kUnknown) {
      result.format = FormatFromExtension(path);
    }
    return result;
  }

  // Inconclusive content (empty or comment-only file): fall back to the
  // extension.
  result.format = FormatFromExtension(path);
  return result;
}

}  // namespace

Result<GraphFileFormat> DetectGraphFormat(const std::string& path) {
  auto sniff = SniffGraphFormat(path);
  if (!sniff.ok()) return sniff.status();
  return sniff.ValueOrDie().format;
}

Result<Graph> ReadGraphAuto(const std::string& path, bool symmetric,
                            bool force_weighted) {
  auto sniffed = SniffGraphFormat(path);
  if (!sniffed.ok()) return sniffed.status();
  const SniffResult& sniff = sniffed.ValueOrDie();
  switch (sniff.format) {
    case GraphFileFormat::kBinaryCsr: {
      // The image records its own weights and symmetry; open it zero-copy
      // as the NVRAM-resident graph.
      auto mapped = MapBinaryGraph(path);
      if (!mapped.ok()) return mapped.status();
      if (force_weighted && !mapped.ValueOrDie().weighted()) {
        return Status::InvalidArgument(
            path + ": weighted load requested but the binary image is "
                   "unweighted");
      }
      return mapped;
    }
    case GraphFileFormat::kShardManifest: {
      // The manifest records weights and symmetry; assemble the mapping.
      auto mapped = MapShardedGraph(path);
      if (!mapped.ok()) return mapped.status();
      if (force_weighted && !mapped.ValueOrDie().weighted()) {
        return Status::InvalidArgument(
            path + ": weighted load requested but the sharded graph is "
                   "unweighted");
      }
      return mapped;
    }
    case GraphFileFormat::kAdjacencyGraph:
    case GraphFileFormat::kWeightedAdjacencyGraph:
      // Adjacency headers declare weightedness themselves.
      return ReadAdjacencyGraph(path, symmetric);
    case GraphFileFormat::kEdgeList:
      if (force_weighted) {
        // Honor the caller's assertion unless the first data line is a
        // complete, genuinely two-column record — triples can't hide in
        // that, so it is a contradiction rather than an override.
        if (!sniff.line_truncated && sniff.first_line_columns == 2) {
          return Status::InvalidArgument(
              path + ": weighted load requested but the first data line "
                     "has only two columns");
        }
        return ReadEdgeList(path, /*weighted=*/true, symmetric);
      }
      return ReadEdgeList(path, /*weighted=*/false, symmetric);
    case GraphFileFormat::kWeightedEdgeList:
      return ReadEdgeList(path, /*weighted=*/true, symmetric);
    case GraphFileFormat::kUnknown:
      break;
  }
  return Status::InvalidArgument(
      path + ": cannot determine graph format (expected an AdjacencyGraph/"
             "WeightedAdjacencyGraph header or a numeric edge list)");
}

Result<Graph> ReadEdgeList(const std::string& path, bool weighted,
                           bool symmetrize) {
  auto data = Slurp(path);
  if (!data.ok()) return data.status();
  Tokens toks(data.ValueOrDie());
  std::vector<WeightedEdge> edges;
  uint64_t max_id = 0;
  for (;;) {
    uint64_t u, v, w = 1;
    if (!toks.Next(&u)) break;
    if (!toks.Next(&v)) {
      return Status::Corruption(path + ": odd number of endpoints");
    }
    if (weighted && !toks.Next(&w)) {
      return Status::Corruption(path + ": missing weight");
    }
    max_id = std::max({max_id, u, v});
    edges.push_back({static_cast<vertex_id>(u), static_cast<vertex_id>(v),
                     static_cast<weight_t>(w)});
  }
  if (edges.empty()) return Status::Corruption(path + ": no edges");
  BuildOptions opts;
  opts.keep_weights = weighted;
  opts.symmetrize = symmetrize;
  return GraphBuilder::Build(static_cast<vertex_id>(max_id + 1),
                             std::move(edges), opts);
}

}  // namespace sage
