// The uncompressed CSR graph: Sage's NVRAM-resident, read-only input.
//
// The semi-asymmetric discipline is enforced two ways:
//  1. statically - algorithms receive `const Graph&` and there is no public
//     mutation API at all (the only mutating structure in the repository is
//     baselines::PackedGraph, which models GBBS's in-place filtering);
//  2. dynamically - every accessor charges the PSAM cost model as a *graph
//     region* access, so tests and benchmarks can audit that Sage performs
//     zero NVRAM writes while baselines pay omega per write.
//
// Accessors charge at neighborhood granularity (one charge per adjacency
// list scanned) to keep instrumentation overhead well below the work being
// measured.
//
// Storage backends: a Graph reads its CSR arrays through spans backed by a
// GraphStorage. The default backend owns std::vectors (graphs built in
// memory); MapBinaryGraph (binary_format.h) supplies a backend borrowing an
// mmap-ed .bsadj file, which makes AllocPolicy::kGraphNvram literal - the
// mapped file *is* the NVRAM-resident graph, constructed zero-copy. The
// backend is shared, so copying a Graph is cheap and never duplicates the
// (potentially enormous) CSR arrays.
#pragma once

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "graph/types.h"
#include "nvram/cost_model.h"
#include "parallel/parallel.h"
#include "parallel/primitives.h"

namespace sage {

class DeltaOverlay;  // graph/delta.h: DRAM delta over an NVRAM base image

namespace internal_overlay {

/// View of one overlaid vertex's merged adjacency list (base - deletes +
/// inserts, sorted, DRAM-resident). POD so graph.h needs no delta.h include;
/// the accessors below are defined in graph/delta.cc.
struct OverlayList {
  const vertex_id* neighbors = nullptr;
  const weight_t* weights = nullptr;  // nullptr when the graph is unweighted
  vertex_id degree = 0;
};

/// Merged list of a touched vertex. Precondition: the overlay's touched bit
/// for `v` is set (aborts otherwise).
OverlayList Find(const DeltaOverlay& overlay, vertex_id v);
/// Bitset of touched vertices, (n + 63) / 64 words.
const uint64_t* TouchedBits(const DeltaOverlay& overlay);
/// Directed edges of the overlay view (base m adjusted by the net delta).
uint64_t OverlayNumEdges(const DeltaOverlay& overlay);
/// Directed edge slots inserted or deleted relative to the base image.
uint64_t OverlayDeltaEdges(const DeltaOverlay& overlay);

}  // namespace internal_overlay

/// Backend owning (or keeping alive) the memory behind a Graph's CSR spans.
/// Implementations must keep the spanned memory valid and immutable for
/// their own lifetime.
class GraphStorage {
 public:
  virtual ~GraphStorage() = default;

  /// n+1 offsets; offsets()[n] == neighbors().size().
  virtual std::span<const edge_offset> offsets() const = 0;
  virtual std::span<const vertex_id> neighbors() const = 0;
  /// Empty, or sized like neighbors().
  virtual std::span<const weight_t> weights() const = 0;

  /// True when the backing memory is a read-only file mapping charged as
  /// NVRAM-resident (the semi-external setup: the file is the graph).
  virtual bool nvram_resident() const { return false; }

  /// The DRAM delta overlay merged into reads of this storage, or nullptr
  /// when the CSR spans are the whole graph. Only OverlayGraphStorage
  /// (graph/delta.h) returns non-null; the overlay must outlive the
  /// storage. Graph caches this at construction, so every accessor reads
  /// base + delta transparently.
  virtual const DeltaOverlay* delta_overlay() const { return nullptr; }

  // --- Multi-shard introspection ----------------------------------------
  // A sharded backend (graph/sharded_storage.h) assembles k independently
  // mapped .bsadj segments into globally contiguous CSR spans, so shards
  // are a partitioning/attribution concept, never an accessor branch:
  // algorithms, writers, and the prefetcher see one dense CSR. These
  // virtuals expose the shard geometry to the cost model (per-shard NVRAM
  // attribution), edgeMap (shard-parallel drive), and the engine (guards).

  /// Number of contiguous vertex shards backing this storage; 0 for
  /// monolithic backends.
  virtual uint32_t shard_count() const { return 0; }
  /// k+1 shard vertex boundaries (shard s owns vertices
  /// [starts[s], starts[s+1])); empty for monolithic backends.
  virtual std::span<const vertex_id> shard_vertex_starts() const {
    return {};
  }
  /// k+1 shard boundaries in directed-edge index space (shard s owns edge
  /// slots [starts[s], starts[s+1])); empty for monolithic backends.
  virtual std::span<const edge_offset> shard_edge_starts() const {
    return {};
  }

  // --- Page-granular advice and residency introspection -----------------
  // Meaningful only for file-mapped backends (MappedGraphStorage), which
  // the prefetch pipeline (graph/prefetch.h) drives; in-memory storage has
  // no pages to advise and inherits these no-ops. Byte offsets are relative
  // to the start of the mapped image.

  /// True when the backend supports page advice (a live file mapping).
  virtual bool SupportsPageAdvice() const { return false; }
  /// Total bytes of the mapped image (0 when not mapped).
  virtual uint64_t MappingBytes() const { return 0; }
  /// Byte offset of the neighbors section within the image.
  virtual uint64_t NeighborsByteOffset() const { return 0; }
  /// Byte offset of the weights section; 0 when unweighted or not mapped.
  virtual uint64_t WeightsByteOffset() const { return 0; }
  /// Hints the kernel to read [offset, offset+bytes) ahead
  /// (madvise(MADV_WILLNEED)); asynchronous, advisory, never fails hard.
  virtual void AdviseWillNeed(uint64_t offset, uint64_t bytes) const {
    (void)offset;
    (void)bytes;
  }
  /// Drops [offset, offset+bytes) from this process's page tables
  /// (madvise(MADV_DONTNEED); re-faulted from the page cache / file on next
  /// touch - safe for the read-only mapping).
  virtual void AdviseDontNeed(uint64_t offset, uint64_t bytes) const {
    (void)offset;
    (void)bytes;
  }
  /// Number of pages of [offset, offset+bytes) currently resident in DRAM
  /// (mincore); 0 when the backend is not mapped.
  virtual uint64_t CountResidentPages(uint64_t offset, uint64_t bytes) const {
    (void)offset;
    (void)bytes;
    return 0;
  }
};

/// GraphStorage that owns its arrays as std::vectors (the in-memory
/// backend used by builders and generators).
class VectorGraphStorage final : public GraphStorage {
 public:
  VectorGraphStorage(std::vector<edge_offset> offsets,
                     std::vector<vertex_id> neighbors,
                     std::vector<weight_t> weights)
      : offsets_(std::move(offsets)),
        neighbors_(std::move(neighbors)),
        weights_(std::move(weights)) {}

  std::span<const edge_offset> offsets() const override { return offsets_; }
  std::span<const vertex_id> neighbors() const override { return neighbors_; }
  std::span<const weight_t> weights() const override { return weights_; }

 private:
  std::vector<edge_offset> offsets_;
  std::vector<vertex_id> neighbors_;
  std::vector<weight_t> weights_;
};

/// Immutable CSR graph. Build instances with GraphBuilder (builder.h), the
/// generators (generators.h), or zero-copy over a mapped binary image
/// (binary_format.h).
class Graph {
 public:
  /// Marker used by generic code to select block-decode paths.
  static constexpr bool kCompressed = false;

  Graph() = default;

  /// Takes ownership of CSR arrays. offsets.size() == n+1;
  /// neighbors.size() == offsets[n]; weights empty or sized like neighbors.
  Graph(std::vector<edge_offset> offsets, std::vector<vertex_id> neighbors,
        std::vector<weight_t> weights, bool symmetric)
      : Graph(std::make_shared<VectorGraphStorage>(std::move(offsets),
                                                   std::move(neighbors),
                                                   std::move(weights)),
              symmetric) {}

  /// Wraps an existing storage backend (owned or borrowed arrays). The
  /// invariants of the vector constructor apply to the backend's spans.
  Graph(std::shared_ptr<const GraphStorage> storage, bool symmetric)
      : storage_(std::move(storage)),
        offsets_(storage_->offsets()),
        neighbors_(storage_->neighbors()),
        weights_(storage_->weights()),
        symmetric_(symmetric) {
    SAGE_CHECK(!offsets_.empty());
    SAGE_CHECK(offsets_.back() == neighbors_.size());
    SAGE_CHECK(weights_.empty() || weights_.size() == neighbors_.size());
    overlay_ = storage_->delta_overlay();
    if (overlay_ != nullptr) {
      overlay_bits_ = internal_overlay::TouchedBits(*overlay_);
      num_edges_ = internal_overlay::OverlayNumEdges(*overlay_);
    } else {
      num_edges_ = neighbors_.size();
    }
  }

  /// Number of vertices n.
  vertex_id num_vertices() const {
    return static_cast<vertex_id>(offsets_.size() - 1);
  }

  /// Number of directed edges stored (2m for a symmetrized graph),
  /// including the net effect of a delta overlay.
  edge_offset num_edges() const { return num_edges_; }

  /// True if every edge (u,v) has its reverse (v,u) present.
  bool symmetric() const { return symmetric_; }

  /// True if an explicit weight array is stored.
  bool weighted() const { return !weights_.empty(); }

  /// Average (out-)degree m/n.
  double avg_degree() const {
    vertex_id n = num_vertices();
    return n == 0 ? 0.0
                  : static_cast<double>(num_edges()) / static_cast<double>(n);
  }

  /// Degree of v. Charges one graph-region read (the offset words), or one
  /// DRAM work read when v's list lives in the delta overlay. The address
  /// hint is v's adjacency start in edge-index space, the same space every
  /// other graph charge uses, so the NUMA model and per-shard attribution
  /// resolve all graph traffic consistently.
  vertex_id degree(vertex_id v) const {
    SAGE_DCHECK(v < num_vertices());
    if (SAGE_UNLIKELY(Overlaid(v))) {
      nvram::Cost().ChargeWorkRead(1, v);
      return OverlayOf(v).degree;
    }
    nvram::Cost().ChargeGraphRead(1, offsets_[v]);
    return static_cast<vertex_id>(offsets_[v + 1] - offsets_[v]);
  }

  /// Degree without charging; for internal size computations whose cost is
  /// already accounted at a coarser granularity.
  vertex_id degree_uncharged(vertex_id v) const {
    if (SAGE_UNLIKELY(Overlaid(v))) return OverlayOf(v).degree;
    return static_cast<vertex_id>(offsets_[v + 1] - offsets_[v]);
  }

  /// Weight of the i-th edge of v (1 for unweighted graphs). The caller's
  /// neighborhood charge covers this read.
  weight_t weight_at(vertex_id v, vertex_id i) const {
    if (SAGE_UNLIKELY(Overlaid(v))) {
      internal_overlay::OverlayList l = OverlayOf(v);
      return l.weights == nullptr ? weight_t{1} : l.weights[i];
    }
    return weights_.empty() ? 1 : weights_[offsets_[v] + i];
  }

  /// Applies f(v, neighbor, weight) to each edge out of v, sequentially.
  /// Charges the whole adjacency list as one graph read (one DRAM work
  /// read of the same word count when v lives in the delta overlay).
  template <typename F>
  void MapNeighbors(vertex_id v, const F& f) const {
    if (SAGE_UNLIKELY(Overlaid(v))) {
      internal_overlay::OverlayList l = OverlayOf(v);
      ChargeOverlayNeighborhood(v, l.degree);
      for (vertex_id i = 0; i < l.degree; ++i)
        f(v, l.neighbors[i], l.weights == nullptr ? weight_t{1} : l.weights[i]);
      return;
    }
    edge_offset lo = offsets_[v], hi = offsets_[v + 1];
    ChargeNeighborhood(v, hi - lo);
    if (weights_.empty()) {
      for (edge_offset i = lo; i < hi; ++i) f(v, neighbors_[i], weight_t{1});
    } else {
      for (edge_offset i = lo; i < hi; ++i) f(v, neighbors_[i], weights_[i]);
    }
  }

  /// Like MapNeighbors but stops early when f returns false. Returns true if
  /// all edges were visited. Charges the full list (conservative: the PSAM
  /// charges the worst case; early exits are a constant-factor refinement).
  template <typename F>
  bool MapNeighborsWhile(vertex_id v, const F& f) const {
    if (SAGE_UNLIKELY(Overlaid(v))) {
      internal_overlay::OverlayList l = OverlayOf(v);
      ChargeOverlayNeighborhood(v, l.degree);
      for (vertex_id i = 0; i < l.degree; ++i) {
        weight_t w = l.weights == nullptr ? weight_t{1} : l.weights[i];
        if (!f(v, l.neighbors[i], w)) return false;
      }
      return true;
    }
    edge_offset lo = offsets_[v], hi = offsets_[v + 1];
    ChargeNeighborhood(v, hi - lo);
    for (edge_offset i = lo; i < hi; ++i) {
      weight_t w = weights_.empty() ? 1 : weights_[i];
      if (!f(v, neighbors_[i], w)) return false;
    }
    return true;
  }

  /// Applies f(v, neighbor, weight) to the edges of v with local indices in
  /// [begin, end) — one logical block of the adjacency list. Charges only
  /// that slice. Used by edgeMapChunked and the graph filter.
  template <typename F>
  void MapNeighborsRange(vertex_id v, edge_offset begin, edge_offset end,
                         const F& f) const {
    if (SAGE_UNLIKELY(Overlaid(v))) {
      internal_overlay::OverlayList l = OverlayOf(v);
      SAGE_DCHECK(end <= l.degree);
      uint64_t words = 1 + (end - begin) + (weights_.empty() ? 0 : end - begin);
      nvram::Cost().ChargeWorkRead(words, offsets_[v] + begin);
      for (edge_offset i = begin; i < end; ++i)
        f(v, l.neighbors[i], l.weights == nullptr ? weight_t{1} : l.weights[i]);
      return;
    }
    edge_offset lo = offsets_[v] + begin, hi = offsets_[v] + end;
    SAGE_DCHECK(hi <= offsets_[v + 1]);
    uint64_t words = 1 + (hi - lo) + (weights_.empty() ? 0 : hi - lo);
    nvram::Cost().ChargeGraphRead(words, lo);
    if (weights_.empty()) {
      for (edge_offset i = lo; i < hi; ++i) f(v, neighbors_[i], weight_t{1});
    } else {
      for (edge_offset i = lo; i < hi; ++i) f(v, neighbors_[i], weights_[i]);
    }
  }

  /// Applies f over the neighborhood of v in parallel (for high-degree
  /// vertices in dense traversals and per-vertex reductions).
  template <typename F>
  void MapNeighborsParallel(vertex_id v, const F& f) const {
    if (SAGE_UNLIKELY(Overlaid(v))) {
      internal_overlay::OverlayList l = OverlayOf(v);
      ChargeOverlayNeighborhood(v, l.degree);
      parallel_for(0, l.degree, [&](size_t i) {
        weight_t w = l.weights == nullptr ? weight_t{1} : l.weights[i];
        f(v, l.neighbors[i], w);
      });
      return;
    }
    edge_offset lo = offsets_[v], hi = offsets_[v + 1];
    ChargeNeighborhood(v, hi - lo);
    parallel_for(lo, hi, [&](size_t i) {
      weight_t w = weights_.empty() ? 1 : weights_[i];
      f(v, neighbors_[i], w);
    });
  }

  /// Reduces g(v, u, w) over v's neighborhood with a parallel monoid reduce.
  template <typename T, typename G, typename Op>
  T ReduceNeighbors(vertex_id v, const G& g, const Op& op, T id) const {
    if (SAGE_UNLIKELY(Overlaid(v))) {
      internal_overlay::OverlayList l = OverlayOf(v);
      ChargeOverlayNeighborhood(v, l.degree);
      return reduce(
          static_cast<size_t>(l.degree),
          [&](size_t i) {
            weight_t w = l.weights == nullptr ? weight_t{1} : l.weights[i];
            return g(v, l.neighbors[i], w);
          },
          op, id);
    }
    edge_offset lo = offsets_[v], hi = offsets_[v + 1];
    ChargeNeighborhood(v, hi - lo);
    return reduce_uncharged<T>(v, lo, hi, g, op, id);
  }

  /// Raw sorted neighbor ids of v (for intersections). Charges the list.
  std::span<const vertex_id> Neighbors(vertex_id v) const {
    if (SAGE_UNLIKELY(Overlaid(v))) {
      internal_overlay::OverlayList l = OverlayOf(v);
      ChargeOverlayNeighborhood(v, l.degree);
      return {l.neighbors, static_cast<size_t>(l.degree)};
    }
    edge_offset lo = offsets_[v], hi = offsets_[v + 1];
    ChargeNeighborhood(v, hi - lo);
    return {neighbors_.data() + lo, static_cast<size_t>(hi - lo)};
  }

  /// Neighbor ids without charging (when the caller already charged, e.g.
  /// block decoding in the graph filter).
  std::span<const vertex_id> NeighborsUncharged(vertex_id v) const {
    if (SAGE_UNLIKELY(Overlaid(v))) {
      internal_overlay::OverlayList l = OverlayOf(v);
      return {l.neighbors, static_cast<size_t>(l.degree)};
    }
    edge_offset lo = offsets_[v], hi = offsets_[v + 1];
    return {neighbors_.data() + lo, static_cast<size_t>(hi - lo)};
  }

  /// The neighbor at absolute position (v, i); uncharged (block-granular
  /// callers charge once per block).
  vertex_id NeighborAt(vertex_id v, edge_offset i) const {
    if (SAGE_UNLIKELY(Overlaid(v))) return OverlayOf(v).neighbors[i];
    return neighbors_[offsets_[v] + i];
  }

  /// Global word address of v's adjacency list start (NUMA/cache hints).
  uint64_t AdjacencyAddress(vertex_id v) const { return offsets_[v]; }

  std::span<const edge_offset> raw_offsets() const { return offsets_; }
  std::span<const vertex_id> raw_neighbors() const { return neighbors_; }
  std::span<const weight_t> raw_weights() const { return weights_; }

  /// True when the CSR arrays are borrowed from an NVRAM-resident file
  /// mapping rather than owned in memory (see binary_format.h).
  bool nvram_resident() const {
    return storage_ != nullptr && storage_->nvram_resident();
  }

  /// True when reads merge a DRAM delta overlay over the base CSR (the
  /// storage is an OverlayGraphStorage; see graph/delta.h). Writers that
  /// serialize via the raw spans must FlattenOverlay() first.
  bool has_overlay() const { return overlay_ != nullptr; }

  /// Directed edge slots inserted or deleted by the overlay relative to
  /// the base image (0 for overlay-free graphs).
  uint64_t delta_edges() const {
    return overlay_ == nullptr ? 0
                               : internal_overlay::OverlayDeltaEdges(*overlay_);
  }

  /// The storage backend (shared: keeps the mapping alive for holders that
  /// outlive this Graph object, e.g. the prefetch pipeline).
  std::shared_ptr<const GraphStorage> storage() const { return storage_; }

  /// Approximate NVRAM bytes occupied by the CSR arrays.
  size_t SizeBytes() const {
    return offsets_.size() * sizeof(edge_offset) +
           neighbors_.size() * sizeof(vertex_id) +
           weights_.size() * sizeof(weight_t);
  }

 private:
  /// True when v's adjacency list lives in the delta overlay. Hot-path
  /// inline: a null check plus one bitset probe for overlay graphs, a
  /// single null check for overlay-free graphs.
  bool Overlaid(vertex_id v) const {
    return overlay_ != nullptr &&
           ((overlay_bits_[v >> 6] >> (v & 63)) & 1ull) != 0;
  }

  internal_overlay::OverlayList OverlayOf(vertex_id v) const {
    return internal_overlay::Find(*overlay_, v);
  }

  void ChargeNeighborhood(vertex_id v, edge_offset deg) const {
    // Offset word + neighbor words (+ weight words when present).
    uint64_t words = 1 + deg + (weights_.empty() ? 0 : deg);
    nvram::Cost().ChargeGraphRead(words, offsets_[v]);
  }

  /// Same word count as ChargeNeighborhood, charged as a DRAM work read:
  /// overlaid lists live in DRAM while the base stays NVRAM-resident, and
  /// the identical word count keeps the overlay view's total PSAM reads
  /// bit-identical to the compacted graph's.
  void ChargeOverlayNeighborhood(vertex_id v, uint64_t deg) const {
    uint64_t words = 1 + deg + (weights_.empty() ? 0 : deg);
    nvram::Cost().ChargeWorkRead(words, offsets_[v]);
  }

  template <typename T, typename G, typename Op>
  T reduce_uncharged(vertex_id v, edge_offset lo, edge_offset hi, const G& g,
                     const Op& op, T id) const {
    return reduce(
        static_cast<size_t>(hi - lo),
        [&](size_t i) {
          edge_offset e = lo + i;
          weight_t w = weights_.empty() ? 1 : weights_[e];
          return g(v, neighbors_[e], w);
        },
        op, id);
  }

  /// Keeps the spanned memory alive; shared across copies of the Graph.
  std::shared_ptr<const GraphStorage> storage_;
  std::span<const edge_offset> offsets_;
  std::span<const vertex_id> neighbors_;
  std::span<const weight_t> weights_;
  /// Delta overlay of the storage (cached; owned by storage_) and its
  /// touched bitset; nullptr for overlay-free graphs.
  const DeltaOverlay* overlay_ = nullptr;
  const uint64_t* overlay_bits_ = nullptr;
  /// Directed edges of the view (== neighbors_.size() without an overlay).
  edge_offset num_edges_ = 0;
  bool symmetric_ = false;
};

}  // namespace sage
