// Page-frontier prefetch pipeline for mapped (semi-external) graphs.
//
// An mmap-ed .bsadj graph faults every page synchronously on first touch,
// so cold traversals serialize compute behind storage. Following Blaze's
// I/O-engine / compute-engine split, this module derives each edgeMap
// round's *page frontier* - the page-aligned byte ranges of the mapping
// that hold the adjacency lists (and weights) of the sparse vertex
// frontier - and issues madvise(MADV_WILLNEED) batches for it on a
// background thread while the compute wave runs. The kernel's readahead
// then pulls pages in ahead of the point where compute would fault them,
// overlapping storage reads with edge processing.
//
// Pieces:
//   - ComputePageFrontier: pure function from (CSR offsets, sparse
//     frontier, section layout) to sorted, coalesced, budget-clamped page
//     ranges; unit-testable with synthetic layouts.
//   - Prefetcher: owns the background advice thread. EdgeMap enqueues one
//     wave per round (EdgeMapOptions::prefetcher, set per run by
//     AlgorithmRegistry when RunContext::prefetch.enabled and the input
//     graph is mapped); the thread computes the page frontier, checks
//     residency via mincore, and advises the non-resident ranges. A
//     sliding per-wave byte budget and a bounded wave queue keep the
//     pipeline from out-running DRAM: pages beyond the budget are left to
//     the compute wave's synchronous fault path and counted as
//     pages_faulted.
//   - EvictGraphPages: drops a mapped graph's pages from the page tables
//     *and* the page cache (madvise(MADV_DONTNEED) + fsync +
//     posix_fadvise(POSIX_FADV_DONTNEED)), so cold-traversal benchmarks
//     measure genuinely cold first touches.
//
// Accounting: pages the pipeline actually pulls in (non-resident at advice
// time) are charged to the run's cost model as nvram_prefetch_reads - NVRAM
// reads attributed distinctly, off the PSAM critical path (PsamCost and
// EmulatedNanos exclude them; the compute wave still pays its graph-read
// charges as before, so prefetch on/off leaves the PSAM counters
// bit-identical).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "graph/graph.h"
#include "nvram/cost_model.h"

namespace sage {

/// Per-run prefetch configuration (RunContext::prefetch; off by default).
struct PrefetchOptions {
  /// Master switch. Only takes effect when the input graph is an mmap-ed
  /// .bsadj image (Graph::nvram_resident()); in-memory graphs have no
  /// pages to prefetch and the registry leaves the pipeline off.
  bool enabled = false;
  /// Sliding per-wave byte budget: at most this many bytes of page frontier
  /// are advised per edgeMap round, so advice never out-runs DRAM. Pages
  /// beyond the budget fall back to the synchronous fault path (counted as
  /// pages_faulted). 0 = unlimited.
  uint64_t budget_bytes = 64ull << 20;
  /// Bound on queued waves. The queue only backs up when compute rounds
  /// finish faster than advice is issued; beyond the bound the *oldest*
  /// wave is dropped (its frontier has already been traversed).
  size_t max_queued_waves = 4;
};

/// Counters kept by the Prefetcher (surfaced in RunReport JSON).
struct PrefetchStats {
  /// Waves (edgeMap rounds) enqueued.
  uint64_t waves = 0;
  /// madvise(MADV_WILLNEED) batches issued (one per coalesced page range).
  uint64_t batches = 0;
  /// Pages advised that were non-resident at advice time: the reads the
  /// pipeline initiated ahead of compute.
  uint64_t pages_prefetched = 0;
  /// Pages of the page frontier already resident when advised (no I/O).
  uint64_t pages_resident = 0;
  /// Pages of the page frontier left to compute's synchronous fault path:
  /// dropped by the per-wave budget or by wave-queue overflow.
  uint64_t pages_faulted = 0;
};

/// A half-open, page-aligned byte range within a mapped graph image.
struct PageRange {
  uint64_t begin = 0;
  uint64_t end = 0;

  friend bool operator==(const PageRange& a, const PageRange& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

/// Byte layout of the mapped image's CSR sections, as needed to turn vertex
/// ids into page ranges. Mirrors GraphStorage's page-advice accessors;
/// tests construct synthetic layouts directly.
struct PageFrontierLayout {
  /// Byte offset of the neighbors section within the mapping.
  uint64_t neighbors_start = 0;
  /// Byte offset of the weights section; 0 when the image is unweighted.
  uint64_t weights_start = 0;
  /// Total mapping size (ranges are clamped to it).
  uint64_t mapping_bytes = 0;
  /// Page size used for alignment (the system page size in production;
  /// tests pick small powers of two).
  uint64_t page_bytes = 4096;
};

/// Derives the page frontier for one sparse vertex frontier: the sorted,
/// coalesced, page-aligned byte ranges of the mapping holding the
/// adjacency slices (and weight slices, when present) of `frontier`,
/// clamped to at most `budget_bytes` (0 = unlimited). Pages beyond the
/// budget are dropped front-to-back and counted into `*pages_dropped`
/// (may be null). Zero-degree vertices contribute nothing; an empty
/// frontier yields no ranges.
std::vector<PageRange> ComputePageFrontier(std::span<const edge_offset> offsets,
                                           std::span<const vertex_id> frontier,
                                           const PageFrontierLayout& layout,
                                           uint64_t budget_bytes,
                                           uint64_t* pages_dropped = nullptr);

/// The system page size (sysconf(_SC_PAGESIZE)), cached.
uint64_t SystemPageBytes();

/// Background advice pipeline over one mapped graph. Construction spawns
/// the advice thread only when the graph's storage supports page advice
/// (active() is false - and every call a no-op - for in-memory graphs).
/// Thread-safe: waves may be enqueued from any thread; stats() and Drain()
/// synchronize with the advice thread. The destructor drains and joins.
class Prefetcher {
 public:
  /// `cost` (nullable) receives the distinct nvram_prefetch_reads charge
  /// for pages the pipeline pulls in; it must outlive the Prefetcher.
  Prefetcher(const Graph& g, const PrefetchOptions& options,
             nvram::CostModel* cost = nullptr);
  ~Prefetcher();
  SAGE_DISALLOW_COPY_AND_ASSIGN(Prefetcher);

  /// True when the graph is mapped and the advice thread is running.
  bool active() const { return storage_ != nullptr; }

  /// True when `g` is the graph this pipeline was built over (EdgeMap may
  /// run over a synthesized weighted twin; advice only makes sense for the
  /// mapped original).
  bool Covers(const Graph& g) const {
    return active() && g.raw_offsets().data() == offsets_.data();
  }

  /// Enqueues the page frontier of one sparse vertex frontier. Copies the
  /// ids; the advice thread does the page math off the critical path.
  void EnqueueWave(std::span<const vertex_id> frontier) SAGE_EXCLUDES(mu_);

  /// Enqueues a whole-section wave for a dense (pull) round, which scans
  /// every adjacency list in order: advises a budget-sized prefix of the
  /// neighbors (and weights) sections.
  void EnqueueDenseWave() SAGE_EXCLUDES(mu_);

  /// Blocks until every enqueued wave has been processed.
  void Drain() SAGE_EXCLUDES(mu_);

  /// Snapshot of the pipeline counters (Drain() first for a final value).
  PrefetchStats stats() const SAGE_EXCLUDES(mu_);

 private:
  struct Wave {
    std::vector<vertex_id> ids;
    bool dense = false;
  };

  void WorkerLoop() SAGE_EXCLUDES(mu_);
  void ProcessWave(const Wave& wave) SAGE_EXCLUDES(mu_);
  void AdviseRanges(const std::vector<PageRange>& ranges) SAGE_EXCLUDES(mu_);
  /// Approximate page count a wave would advise (used to account waves
  /// dropped on queue overflow as left-to-fault). Touches only immutable
  /// layout state, so callers may hold mu_ or not.
  uint64_t EstimatePages(const Wave& wave) const;

  std::shared_ptr<const GraphStorage> storage_;  // keeps the mapping alive
  std::span<const edge_offset> offsets_;
  PageFrontierLayout layout_;
  PrefetchOptions options_;
  nvram::CostModel* cost_ = nullptr;

  /// Bytes of the dense span already advised by earlier dense waves, so
  /// consecutive pull rounds slide through the edge sections instead of
  /// re-advising the same budget prefix. Worker-thread state: only touched
  /// from ProcessWave.
  uint64_t dense_cursor_ = 0;

  mutable Mutex mu_;
  CondVar work_cv_;
  CondVar idle_cv_;
  std::deque<Wave> queue_ SAGE_GUARDED_BY(mu_);
  bool stop_ SAGE_GUARDED_BY(mu_) = false;
  /// True while the worker processes a wave outside mu_; Drain()'s idle
  /// condition is `queue_.empty() && !busy_`.
  bool busy_ SAGE_GUARDED_BY(mu_) = false;
  PrefetchStats stats_ SAGE_GUARDED_BY(mu_);
  std::thread worker_;
};

/// Evicts a mapped graph's pages from DRAM: madvise(MADV_DONTNEED) over the
/// mapping (drops this process's page tables), then fsync +
/// posix_fadvise(POSIX_FADV_DONTNEED) on `path` (drops the now-unmapped
/// clean pages from the page cache). After this, the next traversal pays
/// genuinely cold first-touch faults. InvalidArgument when the graph is not
/// mapped; IOError when the file cannot be reopened.
Status EvictGraphPages(const Graph& g, const std::string& path);

}  // namespace sage
