// GBBS-style baseline pipelines for the "edge deleting" algorithms: the
// same logic as the Sage versions, but filtering mutates a PackedGraph
// (in-place adjacency packing = graph-region writes) instead of a DRAM
// graphFilter. Traversal baselines need no separate code: GBBS's
// edgeMapBlocked is selected with SparseVariant::kBlocked, and the
// libvmmalloc / MemoryMode configurations are AllocPolicy settings.
#pragma once

#include <atomic>
#include <utility>
#include <vector>

#include "algorithms/maximal_matching.h"
#include "baselines/packed_graph.h"
#include "graph/graph.h"
#include "parallel/parallel.h"
#include "parallel/primitives.h"

namespace sage::baselines {

/// Triangle counting with in-place orientation (GBBS): packs the mutable
/// graph from lower to higher (degree, id) rank, then intersects.
inline uint64_t GbbsTriangleCount(const Graph& g) {
  PackedGraph pg(g);
  auto rank_less = [&](vertex_id a, vertex_id b) {
    uint32_t da = g.degree_uncharged(a), db = g.degree_uncharged(b);
    return da != db ? da < db : a < b;
  };
  pg.FilterEdges([&](vertex_id v, vertex_id u) { return rank_less(v, u); });
  const vertex_id n = pg.num_vertices();
  struct alignas(kCacheLineBytes) Local {
    uint64_t count = 0;
  };
  std::vector<Local> locals(Scheduler::kMaxShards);
  parallel_for(0, n, [&](size_t vi) {
    vertex_id v = static_cast<vertex_id>(vi);
    auto nv = pg.Neighbors(v);
    uint64_t c = 0;
    for (vertex_id u : nv) {
      auto nu = pg.Neighbors(u);
      size_t x = 0, y = 0;
      while (x < nv.size() && y < nu.size()) {
        if (nv[x] < nu[y]) {
          ++x;
        } else if (nv[x] > nu[y]) {
          ++y;
        } else {
          ++c;
          ++x;
          ++y;
        }
      }
    }
    locals[shard_id()].count += c;
  });
  uint64_t total = 0;
  for (const auto& l : locals) total += l.count;
  return total;
}

/// Maximal matching with in-place filtering (GBBS): random-priority edge
/// matching where edges incident to matched vertices are packed out of the
/// mutable graph each phase.
inline std::vector<std::pair<vertex_id, vertex_id>> GbbsMaximalMatching(
    const Graph& g, uint64_t seed = 1) {
  const vertex_id n = g.num_vertices();
  PackedGraph pg(g);
  std::vector<std::atomic<uint8_t>> matched(n);
  std::vector<std::atomic<uint64_t>> reserve(n);
  parallel_for(0, n, [&](size_t v) {
    matched[v].store(0, std::memory_order_relaxed);
    reserve[v].store(~0ULL, std::memory_order_relaxed);
  });
  std::vector<std::pair<vertex_id, vertex_id>> out;
  uint64_t remaining = pg.num_edges();
  uint64_t round = 0;
  while (remaining > 0) {
    std::vector<std::vector<internal::MatchEdge>> local(
        Scheduler::kMaxShards);
    std::atomic<uint64_t> salt{round << 40};
    parallel_for(0, n, [&](size_t vi) {
      vertex_id v = static_cast<vertex_id>(vi);
      if (matched[v].load(std::memory_order_relaxed)) return;
      pg.MapNeighbors(v, [&](vertex_id a, vertex_id b) {
        if (a < b && matched[b].load(std::memory_order_relaxed) == 0) {
          uint64_t s = salt.fetch_add(1, std::memory_order_relaxed);
          uint64_t key = ((Hash64(seed ^ s) & 0x7FFFFFFFULL) << 32) |
                         (s & 0xFFFFFFFFULL);
          local[shard_id()].push_back({a, b, key});
        }
      });
    });
    auto batch = flatten(local);
    if (!batch.empty()) {
      internal::MatchBatch(std::move(batch), reserve, matched, out);
    }
    remaining = pg.FilterEdges([&](vertex_id a, vertex_id b) {
      return matched[a].load(std::memory_order_relaxed) == 0 &&
             matched[b].load(std::memory_order_relaxed) == 0;
    });
    ++round;
  }
  return out;
}

}  // namespace sage::baselines
