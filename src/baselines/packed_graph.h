// GBBS-style mutable graph baseline: filtering is performed by packing
// adjacency lists *in place*, in the graph region. On NVRAM this is exactly
// what Sage's graphFilter avoids - every packed word is an omega-cost NVRAM
// write (plus wear). Used by benchmark baselines (GBBS-DRAM /
// GBBS-NVRAM-libvmmalloc / GBBS-MemMode in Figures 1 and 7) to contrast
// with the filter's write-free discipline.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "nvram/cost_model.h"
#include "parallel/parallel.h"
#include "parallel/primitives.h"

namespace sage::baselines {

/// Mutable CSR copy whose edge packing charges graph-region writes.
class PackedGraph {
 public:
  /// Copies g's adjacency structure. The copy itself charges graph writes
  /// (GBBS must materialize its mutable graph in the big memory).
  explicit PackedGraph(const Graph& g)
      : offsets_(g.raw_offsets().begin(), g.raw_offsets().end()),
        neighbors_(g.raw_neighbors().begin(), g.raw_neighbors().end()),
        degree_(g.num_vertices()) {
    parallel_for(0, degree_.size(), [&](size_t v) {
      degree_[v] = static_cast<vertex_id>(offsets_[v + 1] - offsets_[v]);
    });
    nvram::Cost().ChargeGraphWrite(neighbors_.size());
  }

  vertex_id num_vertices() const {
    return static_cast<vertex_id>(degree_.size());
  }

  /// Current (packed) degree of v.
  vertex_id degree(vertex_id v) const {
    nvram::Cost().ChargeGraphRead(1, offsets_[v]);
    return degree_[v];
  }
  vertex_id degree_uncharged(vertex_id v) const { return degree_[v]; }

  /// Total live edges.
  uint64_t num_edges() const {
    return reduce_add<uint64_t>(degree_.size(),
                                [&](size_t v) { return degree_[v]; });
  }

  /// Applies f(v, u) over v's live edges; charges graph reads.
  template <typename F>
  void MapNeighbors(vertex_id v, const F& f) const {
    edge_offset lo = offsets_[v];
    nvram::Cost().ChargeGraphRead(1 + degree_[v], lo);
    for (vertex_id i = 0; i < degree_[v]; ++i) f(v, neighbors_[lo + i]);
  }

  /// Live neighbors of v (sorted; packing is order-preserving).
  std::span<const vertex_id> Neighbors(vertex_id v) const {
    edge_offset lo = offsets_[v];
    nvram::Cost().ChargeGraphRead(1 + degree_[v], lo);
    return {neighbors_.data() + lo, static_cast<size_t>(degree_[v])};
  }

  /// Removes v's edges failing pred by compacting the adjacency list in
  /// place - the GBBS filtering step. Every surviving word is rewritten:
  /// an NVRAM write under NVRAM policies.
  template <typename Pred>
  void PackVertex(vertex_id v, const Pred& pred) {
    edge_offset lo = offsets_[v];
    vertex_id kept = 0;
    for (vertex_id i = 0; i < degree_[v]; ++i) {
      vertex_id u = neighbors_[lo + i];
      if (pred(v, u)) neighbors_[lo + kept++] = u;
    }
    auto& cm = nvram::Cost();
    cm.ChargeGraphRead(degree_[v], lo);
    cm.ChargeGraphWrite(kept + 1, lo);  // compacted words + degree word
    degree_[v] = kept;
  }

  /// Packs all vertices in parallel; returns remaining edges.
  template <typename Pred>
  uint64_t FilterEdges(const Pred& pred) {
    parallel_for(0, degree_.size(), [&](size_t v) {
      PackVertex(static_cast<vertex_id>(v), pred);
    });
    return num_edges();
  }

 private:
  std::vector<edge_offset> offsets_;
  std::vector<vertex_id> neighbors_;
  std::vector<vertex_id> degree_;
};

}  // namespace sage::baselines
