// GridGraph-like semi-external engine (Table 3, Section 5.6).
//
// Models the 2-D grid out-of-core systems Sage is compared against:
// vertices are cut into P intervals, edges into P x P blocks stored on the
// slow tier, and every superstep *streams* the relevant edge blocks. The
// engine is restricted to a vertex-centric streaming API (so work-optimal
// algorithms like Sage's connectivity cannot be expressed), and - unlike
// Sage's random-access reads - it must re-stream whole blocks even when a
// single edge in the block is useful. Edge streaming charges the graph
// region per block touched, reproducing the orders-of-magnitude gap of
// Table 3 in the emulated cost model.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "algorithms/bellman_ford.h"  // internal::WriteMin
#include "graph/graph.h"
#include "graph/types.h"
#include "nvram/cost_model.h"
#include "parallel/parallel.h"
#include "parallel/primitives.h"

namespace sage::baselines {

/// 2-D grid edge layout with streaming supersteps.
class GridEngine {
 public:
  /// Per-word cost of the streaming storage tier relative to the emulated
  /// NVRAM word (SSD arrays vs Optane).
  static constexpr uint64_t kStreamCostMultiplier = 32;

  /// Builds the grid from g with `partitions` intervals per dimension.
  GridEngine(const Graph& g, uint32_t partitions = 16)
      : n_(g.num_vertices()), p_(partitions) {
    interval_ = (n_ + p_ - 1) / p_;
    blocks_.assign(static_cast<size_t>(p_) * p_, {});
    for (vertex_id v = 0; v < n_; ++v) {
      uint32_t bi = v / interval_;
      for (vertex_id u : g.NeighborsUncharged(v)) {
        uint32_t bj = u / interval_;
        blocks_[static_cast<size_t>(bi) * p_ + bj].push_back({v, u});
      }
    }
  }

  vertex_id num_vertices() const { return n_; }

  /// Streams every edge block whose *source interval* contains an active
  /// vertex, applying f(u, v) to each edge. This is the engine's only
  /// access path: whole blocks are read from the slow tier even when few
  /// of their edges matter.
  template <typename F>
  void StreamEdges(const std::vector<uint8_t>& active_interval,
                   const F& f) const {
    parallel_for(
        0, blocks_.size(),
        [&](size_t b) {
          uint32_t bi = static_cast<uint32_t>(b) / p_;
          if (!active_interval[bi]) return;
          const auto& block = blocks_[b];
          if (block.empty()) return;
          // Streaming the block = sequential read of 2 words/edge from the
          // engines' storage tier. Table 3's systems stream from SSD
          // arrays, roughly kStreamCostMultiplier slower per word than the
          // NVRAM tier Sage random-accesses.
          nvram::Cost().ChargeGraphRead(
              2 * block.size() * kStreamCostMultiplier, b * 4096);
          for (const auto& [u, v] : block) f(u, v);
        },
        1);
  }

  /// Marks the interval flags for a set of active vertices.
  std::vector<uint8_t> ActiveIntervals(
      const std::vector<uint8_t>& active_vertex) const {
    std::vector<uint8_t> flags(p_, 0);
    parallel_for(0, n_, [&](size_t v) {
      if (active_vertex[v]) flags[v / interval_] = 1;
    });
    return flags;
  }

  /// Vertex-centric BFS: supersteps of full streaming until no updates.
  std::vector<uint32_t> Bfs(vertex_id src) const {
    std::vector<std::atomic<uint32_t>> level(n_);
    parallel_for(0, n_, [&](size_t v) { level[v].store(~0u); });
    level[src].store(0);
    std::vector<uint8_t> active(n_, 0);
    active[src] = 1;
    for (uint32_t round = 0;; ++round) {
      auto intervals = ActiveIntervals(active);
      std::vector<uint8_t> next(n_, 0);
      std::atomic<bool> any{false};
      StreamEdges(intervals, [&](vertex_id u, vertex_id v) {
        if (!active[u]) return;
        if (level[u].load(std::memory_order_relaxed) != round) return;
        uint32_t unseen = ~0u;
        if (level[v].compare_exchange_strong(unseen, round + 1,
                                             std::memory_order_relaxed)) {
          next[v] = 1;
          any.store(true, std::memory_order_relaxed);
        }
      });
      if (!any.load()) break;
      active = std::move(next);
    }
    return tabulate<uint32_t>(n_, [&](size_t v) { return level[v].load(); });
  }

  /// Vertex-centric connectivity: label propagation to fixpoint (the
  /// classic semi-external formulation; Theta(diameter) full streams).
  std::vector<vertex_id> Connectivity() const {
    std::vector<std::atomic<vertex_id>> label(n_);
    parallel_for(0, n_, [&](size_t v) {
      label[v].store(static_cast<vertex_id>(v), std::memory_order_relaxed);
    });
    std::vector<uint8_t> active(n_, 1);
    while (true) {
      auto intervals = ActiveIntervals(active);
      std::vector<uint8_t> next(n_, 0);
      std::atomic<bool> any{false};
      StreamEdges(intervals, [&](vertex_id u, vertex_id v) {
        if (!active[u]) return;
        vertex_id lu = label[u].load(std::memory_order_relaxed);
        vertex_id lv = label[v].load(std::memory_order_relaxed);
        while (lu < lv) {
          if (label[v].compare_exchange_weak(lv, lu,
                                             std::memory_order_relaxed)) {
            next[v] = 1;
            any.store(true, std::memory_order_relaxed);
            break;
          }
        }
      });
      if (!any.load()) break;
      active = std::move(next);
    }
    return tabulate<vertex_id>(n_, [&](size_t v) {
      return label[v].load(std::memory_order_relaxed);
    });
  }

  /// One PageRank iteration (all blocks streamed; damping 0.85).
  std::vector<double> PageRankIteration(
      const std::vector<double>& rank,
      const std::vector<uint32_t>& out_degree) const {
    std::vector<std::atomic<double>> acc(n_);
    parallel_for(0, n_, [&](size_t v) { acc[v].store(0.0); });
    std::vector<uint8_t> all(p_, 1);
    StreamEdges(all, [&](vertex_id u, vertex_id v) {
      if (out_degree[u] == 0) return;
      double delta = rank[u] / out_degree[u];
      double cur = acc[v].load(std::memory_order_relaxed);
      while (!acc[v].compare_exchange_weak(cur, cur + delta,
                                           std::memory_order_relaxed)) {
      }
    });
    return tabulate<double>(n_, [&](size_t v) {
      return 0.15 / n_ + 0.85 * acc[v].load(std::memory_order_relaxed);
    });
  }

 private:
  struct GridEdge {
    vertex_id u, v;
  };
  vertex_id n_;
  uint32_t p_;
  vertex_id interval_;
  std::vector<std::vector<GridEdge>> blocks_;
};

}  // namespace sage::baselines
