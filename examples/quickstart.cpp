// Quickstart: build a graph, run a few algorithms, inspect the PSAM cost
// counters. This is the five-minute tour of the public API.
//
//   ./quickstart                  # generated power-law graph
//   ./quickstart -graph my.adj    # Ligra AdjacencyGraph file
#include <cstdio>

#include "algorithms/algorithms.h"
#include "core/sage.h"

using namespace sage;

int main(int argc, char** argv) {
  CommandLine cmd(argc, argv);

  // 1. Get a graph: from a file, or generated (deterministic per seed).
  Graph g;
  if (cmd.Has("graph")) {
    auto result = ReadAdjacencyGraph(cmd.GetString("graph"),
                                     /*symmetric=*/true);
    if (!result.ok()) {
      std::fprintf(stderr, "failed to load graph: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    g = result.TakeValue();
  } else {
    int log_n = static_cast<int>(cmd.GetInt("logn", 16));
    uint64_t edges = static_cast<uint64_t>(cmd.GetInt("edges", 1 << 20));
    g = RmatGraph(log_n, edges, /*seed=*/42);
  }
  auto stats = ComputeStats(g);
  std::printf("graph: %s\n", stats.ToString().c_str());

  // 2. The graph is NVRAM-resident and read-only; algorithms charge the
  //    PSAM cost model as they run.
  auto& cm = nvram::CostModel::Get();
  cm.SetAllocPolicy(nvram::AllocPolicy::kGraphNvram);
  cm.ResetCounters();

  // 3. Run algorithms through the public API.
  {
    ScopedTimer t("BFS");
    auto parents = Bfs(g, /*src=*/0);
    size_t reached = count_if(parents, [](vertex_id p) {
      return p != kNoVertex;
    });
    std::printf("  BFS reached %zu of %u vertices\n", reached,
                g.num_vertices());
  }
  {
    ScopedTimer t("Connectivity");
    auto labels = Connectivity(g);
    auto uniq = parallel_sort(labels);
    std::printf("  %zu connected components\n",
                unique_sorted(uniq).size());
  }
  {
    ScopedTimer t("Triangle counting");
    auto tc = TriangleCount(g);
    std::printf("  %llu triangles\n",
                static_cast<unsigned long long>(tc.triangles));
  }
  {
    ScopedTimer t("PageRank");
    auto pr = PageRank(g, 1e-6, 50);
    std::printf("  converged in %llu iterations\n",
                static_cast<unsigned long long>(pr.iterations));
  }

  // 4. The semi-asymmetric discipline, verified by the counters: plenty of
  //    NVRAM reads, zero NVRAM writes.
  auto totals = cm.Totals();
  std::printf("\nPSAM counters: %s\n", totals.ToString().c_str());
  std::printf("NVRAM writes: %llu (Sage's invariant: always 0)\n",
              static_cast<unsigned long long>(totals.nvram_writes));
  return 0;
}
