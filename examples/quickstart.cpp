// Quickstart: build a graph, run algorithms through the Engine facade,
// inspect the PSAM cost counters. This is the five-minute tour of the
// public API.
//
//   ./quickstart                  # generated power-law graph
//   ./quickstart -graph my.adj    # Ligra AdjacencyGraph file
#include <cstdio>

#include "core/sage.h"

using namespace sage;

int main(int argc, char** argv) {
  CommandLine cmd(argc, argv);

  // 1. Get a graph: from a file, or generated (deterministic per seed).
  Graph g;
  if (cmd.Has("graph")) {
    auto result = ReadGraphAuto(cmd.GetString("graph"), /*symmetric=*/true);
    if (!result.ok()) {
      std::fprintf(stderr, "failed to load graph: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    g = result.TakeValue();
  } else {
    int log_n = static_cast<int>(cmd.GetInt("logn", 16));
    uint64_t edges = static_cast<uint64_t>(cmd.GetInt("edges", 1 << 20));
    g = RmatGraph(log_n, edges, /*seed=*/42);
  }
  auto stats = ComputeStats(g);
  std::printf("graph: %s\n", stats.ToString().c_str());

  // 2. An Engine owns the graph plus a RunContext. The default context is
  //    the paper's Sage-NVRAM configuration: the graph is NVRAM-resident
  //    and read-only, mutable state lives in DRAM, and every run is
  //    charged to the PSAM cost model.
  Engine engine(std::move(g));

  // 3. Run algorithms by registry name; each run returns a RunReport with
  //    the output, a summary, wall time, and the PSAM counter deltas.
  nvram::CostTotals totals;
  for (const char* algo :
       {"bfs", "connectivity", "triangle-count", "pagerank"}) {
    auto run = engine.Run(algo);
    if (!run.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", algo,
                   run.status().ToString().c_str());
      return 1;
    }
    const RunReport& report = run.ValueOrDie();
    std::printf("  %-16s %8.4f s   %s\n", algo, report.wall_seconds,
                report.summary.c_str());
    totals += report.cost;
  }

  // 4. The semi-asymmetric discipline, verified by the counters: plenty of
  //    NVRAM reads, zero NVRAM writes.
  std::printf("\nPSAM counters: %s\n", totals.ToString().c_str());
  std::printf("NVRAM writes: %llu (Sage's invariant: always 0)\n",
              static_cast<unsigned long long>(totals.nvram_writes));
  return 0;
}
