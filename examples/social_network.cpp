// Social-network analysis: clustering coefficients from triangle counts,
// community scaffolding via maximal independent sets and matchings, and
// shortest-path structure (weighted distances, betweenness) on a
// social-style power-law graph.
#include <cstdio>

#include "algorithms/algorithms.h"
#include "core/sage.h"

using namespace sage;

int main(int argc, char** argv) {
  CommandLine cmd(argc, argv);
  int log_n = static_cast<int>(cmd.GetInt("logn", 15));
  uint64_t edges = static_cast<uint64_t>(cmd.GetInt("edges", 1 << 20));

  // Social graphs: heavier-tailed RMAT parameters than web graphs.
  Graph g = RmatGraph(log_n, edges, /*seed=*/3, 0.45, 0.15, 0.15);
  auto stats = ComputeStats(g);
  std::printf("social graph: %s\n\n", stats.ToString().c_str());

  auto& cm = nvram::Cost();
  cm.SetAllocPolicy(nvram::AllocPolicy::kGraphNvram);

  // Global clustering coefficient = 3 * triangles / wedges.
  auto tc = TriangleCount(g);
  uint64_t wedges = reduce_add<uint64_t>(g.num_vertices(), [&](size_t v) {
    uint64_t d = g.degree_uncharged(static_cast<vertex_id>(v));
    return d * (d - 1) / 2;
  });
  std::printf("triangles: %llu, global clustering coefficient: %.4f\n",
              static_cast<unsigned long long>(tc.triangles),
              wedges == 0 ? 0.0 : 3.0 * tc.triangles / wedges);

  // Independent "seed users" for influence campaigns: an MIS.
  auto mis = MaximalIndependentSet(g, 1);
  size_t seeds = count_if(mis, [](uint8_t m) { return m == 1; });
  std::printf("maximal independent seed set: %zu users\n", seeds);

  // Buddy pairing: a maximal matching.
  auto matching = MaximalMatching(g, 2);
  std::printf("maximal matching: %zu pairs\n", matching.size());

  // Chromatic scheduling: color users so neighbors never share a slot.
  auto colors = GraphColoring(g, 4);
  uint32_t palette = 1 + reduce_max<uint32_t>(
      colors.size(), [&](size_t v) { return colors[v]; }, 0);
  std::printf("coloring: %u slots (max degree %llu)\n", palette,
              static_cast<unsigned long long>(stats.max_degree));

  // Who brokers the most shortest paths from user 0?
  auto bc = Betweenness(g, 0);
  double best = 0;
  vertex_id broker = 0;
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    if (bc[v] > best) {
      best = bc[v];
      broker = v;
    }
  }
  std::printf("top broker from user 0: vertex %u (dependency %.1f)\n",
              broker, best);

  // Weighted closeness: distances under integral tie strengths.
  Graph gw = AddRandomWeights(g, 9);
  auto dist = WeightedBfs(gw, 0);
  uint64_t reached = 0, total = 0;
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    if (dist[v] != kInfDist) {
      ++reached;
      total += dist[v];
    }
  }
  std::printf("weighted sssp from user 0: reached %llu users, avg distance "
              "%.2f\n",
              static_cast<unsigned long long>(reached),
              reached == 0 ? 0.0 : static_cast<double>(total) / reached);
  return 0;
}
