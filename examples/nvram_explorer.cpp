// NVRAM cost explorer: runs one algorithm under every device
// configuration the emulation layer models (App-Direct, Memory Mode,
// libvmmalloc-style, pure DRAM), across a sweep of write-asymmetry values
// omega, and prints the PSAM cost and projected device time for each.
// This is the example to read to understand the emulation substrate.
//
// Sage rows go through the engine API — a RunContext per (policy, omega)
// point, so the device sweep configures only the ambient context. The
// GBBS-style rows run the mutating baselines, which are not registry
// algorithms; they are measured manually against the same counters.
#include <cstdio>

#include "baselines/gbbs_algorithms.h"
#include "core/sage.h"

using namespace sage;

namespace {

void PrintRow(const char* label, double omega, double wall_seconds,
              double psam_cost, double device_ms, uint64_t nvram_writes) {
  std::printf("%-26s omega=%4.1f  wall=%7.3fs  psam-cost=%10.1fM  "
              "device-time=%9.1fms  nvram_w=%llu\n",
              label, omega, wall_seconds, psam_cost / 1e6, device_ms,
              static_cast<unsigned long long>(nvram_writes));
}

void RunSage(const char* label, const Graph& g, nvram::AllocPolicy policy,
             double omega) {
  RunContext ctx;
  ctx.policy = policy;
  ctx.omega = omega;
  auto run = AlgorithmRegistry::Run("triangle-count", g, ctx);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return;
  }
  const RunReport& r = run.ValueOrDie();
  PrintRow(label, omega, r.wall_seconds, r.PsamCost(),
           r.device_seconds * 1e3, r.cost.nvram_writes);
}

void RunMutatingBaseline(const char* label, const Graph& g,
                         nvram::AllocPolicy policy, double omega) {
  auto& cm = nvram::Cost();
  auto cfg = cm.config();
  cfg.omega = omega;
  cm.SetConfig(cfg);
  cm.SetAllocPolicy(policy);
  cm.ResetCounters();
  Timer t;
  (void)baselines::GbbsTriangleCount(g);
  double wall = t.Seconds();
  auto totals = cm.Totals();
  PrintRow(label, omega, wall, totals.PsamCost(omega),
           cm.EmulatedNanos(totals, num_workers()) / 1e6,
           totals.nvram_writes);
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cmd(argc, argv);
  int log_n = static_cast<int>(cmd.GetInt("logn", 14));
  uint64_t edges = static_cast<uint64_t>(cmd.GetInt("edges", 400000));
  Graph g = RmatGraph(log_n, edges, 5);
  std::printf("triangle counting on RMAT n=%u m=%llu, under every device "
              "configuration:\n\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  for (double omega : {1.0, 4.0, 16.0}) {
    RunSage("Sage (App-Direct)", g, nvram::AllocPolicy::kGraphNvram, omega);
    RunSage("Sage (pure DRAM)", g, nvram::AllocPolicy::kAllDram, omega);
    RunMutatingBaseline("GBBS-style (App-Direct)", g,
                        nvram::AllocPolicy::kGraphNvram, omega);
    RunMutatingBaseline("GBBS-style (MemoryMode)", g,
                        nvram::AllocPolicy::kMemoryMode, omega);
    RunMutatingBaseline("GBBS-style (libvmmalloc)", g,
                        nvram::AllocPolicy::kAllNvram, omega);
    std::printf("\n");
  }
  std::printf("Sage's device time is flat in omega (zero NVRAM writes); "
              "the mutating baseline's grows linearly.\n");
  nvram::Cost().SetConfig(nvram::EmulationConfig{});
  return 0;
}
