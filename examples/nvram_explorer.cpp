// NVRAM cost explorer: runs one algorithm under every device
// configuration the emulation layer models (App-Direct, Memory Mode,
// libvmmalloc-style, pure DRAM), across a sweep of write-asymmetry values
// omega, and prints the PSAM cost and projected device time for each.
// This is the example to read to understand the emulation substrate.
#include <cstdio>

#include "algorithms/algorithms.h"
#include "baselines/gbbs_algorithms.h"
#include "core/sage.h"

using namespace sage;

namespace {

void RunOne(const char* label, const Graph& g, nvram::AllocPolicy policy,
            bool mutating, double omega) {
  auto& cm = nvram::CostModel::Get();
  auto cfg = cm.config();
  cfg.omega = omega;
  cm.SetConfig(cfg);
  cm.SetAllocPolicy(policy);
  cm.ResetCounters();
  Timer t;
  if (mutating) {
    (void)baselines::GbbsTriangleCount(g);
  } else {
    (void)TriangleCount(g);
  }
  double wall = t.Seconds();
  auto totals = cm.Totals();
  double emu_ms = cm.EmulatedNanos(totals, num_workers()) / 1e6;
  std::printf("%-26s omega=%4.1f  wall=%7.3fs  psam-cost=%10.1fM  "
              "device-time=%9.1fms  nvram_w=%llu\n",
              label, omega, wall, totals.PsamCost(omega) / 1e6, emu_ms,
              static_cast<unsigned long long>(totals.nvram_writes));
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cmd(argc, argv);
  int log_n = static_cast<int>(cmd.GetInt("logn", 14));
  uint64_t edges = static_cast<uint64_t>(cmd.GetInt("edges", 400000));
  Graph g = RmatGraph(log_n, edges, 5);
  std::printf("triangle counting on RMAT n=%u m=%llu, under every device "
              "configuration:\n\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  for (double omega : {1.0, 4.0, 16.0}) {
    RunOne("Sage (App-Direct)", g, nvram::AllocPolicy::kGraphNvram, false,
           omega);
    RunOne("Sage (pure DRAM)", g, nvram::AllocPolicy::kAllDram, false,
           omega);
    RunOne("GBBS-style (App-Direct)", g, nvram::AllocPolicy::kGraphNvram,
           true, omega);
    RunOne("GBBS-style (MemoryMode)", g, nvram::AllocPolicy::kMemoryMode,
           true, omega);
    RunOne("GBBS-style (libvmmalloc)", g, nvram::AllocPolicy::kAllNvram,
           true, omega);
    std::printf("\n");
  }
  std::printf("Sage's device time is flat in omega (zero NVRAM writes); "
              "the mutating baseline's grows linearly.\n");
  nvram::CostModel::Get().SetConfig(nvram::EmulationConfig{});
  return 0;
}
