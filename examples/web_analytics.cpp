// Web-graph analytics: the workload class the paper's introduction
// motivates (ranking + structure mining over a web crawl that lives in
// NVRAM). Runs PageRank, k-core decomposition, and approximate densest
// subgraph over a compressed web-like graph, reporting the compression
// ratio and NVRAM traffic.
#include <algorithm>
#include <cstdio>
#include <future>

#include "algorithms/algorithms.h"
#include "core/sage.h"

using namespace sage;

int main(int argc, char** argv) {
  CommandLine cmd(argc, argv);
  int log_n = static_cast<int>(cmd.GetInt("logn", 16));
  uint64_t edges = static_cast<uint64_t>(cmd.GetInt("edges", 1 << 21));

  std::printf("building web-like RMAT graph (2^%d vertices, %llu edge "
              "samples)...\n",
              log_n, static_cast<unsigned long long>(edges));
  Graph g = RmatGraph(log_n, edges, /*seed=*/7);

  // Web graphs are stored byte-compressed in NVRAM (Ligra+ format); the
  // compression block size ties to the filter block size.
  CompressedGraph cg = CompressedGraph::FromGraph(g, /*block_size=*/64);
  std::printf("CSR %.1f MB -> compressed %.1f MB (%.2fx)\n",
              g.SizeBytes() / 1e6, cg.SizeBytes() / 1e6,
              static_cast<double>(g.SizeBytes()) / cg.SizeBytes());

  auto& cm = nvram::Cost();
  cm.SetAllocPolicy(nvram::AllocPolicy::kGraphNvram);
  cm.ResetCounters();

  // PageRank on the compressed graph: find the top pages.
  auto pr = PageRank(cg, 1e-7, 100);
  std::vector<std::pair<double, vertex_id>> ranked(g.num_vertices());
  parallel_for(0, g.num_vertices(), [&](size_t v) {
    ranked[v] = {pr.rank[v], static_cast<vertex_id>(v)};
  });
  parallel_sort_inplace(ranked, [](const auto& a, const auto& b) {
    return a.first > b.first;
  });
  std::printf("\ntop pages by PageRank (%llu iterations):\n",
              static_cast<unsigned long long>(pr.iterations));
  for (int i = 0; i < 5; ++i) {
    std::printf("  #%d: vertex %u  rank %.3e  degree %u\n", i + 1,
                ranked[i].second, ranked[i].first,
                g.degree_uncharged(ranked[i].second));
  }

  // Coreness: the web graph's dense nucleus.
  auto kcore = KCore(cg);
  std::printf("\nk-core: k_max = %u (found over %llu peeling rounds)\n",
              kcore.max_core,
              static_cast<unsigned long long>(kcore.rounds));

  // Densest subgraph: an even denser community than the max core average.
  auto densest = ApproxDensestSubgraph(cg, 0.001);
  std::printf("densest subgraph: density %.2f over %zu vertices\n",
              densest.density, densest.members.size());

  auto totals = cm.Totals();
  std::printf("\nNVRAM reads: %llu words, NVRAM writes: %llu (read-only "
              "discipline)\n",
              static_cast<unsigned long long>(totals.nvram_reads),
              static_cast<unsigned long long>(totals.nvram_writes));

  // Serving mode: the same immutable graph image answers many analytics
  // queries at once. Submit overlapping queries through the engine's
  // query service; each report carries exactly its own PSAM counters.
  std::printf("\nconcurrent serving (Engine::Submit, one shared graph):\n");
  Engine engine(std::move(g));
  std::vector<std::future<Result<RunReport>>> queries;
  queries.push_back(engine.Submit("pagerank"));
  queries.push_back(engine.Submit("kcore"));
  queries.push_back(engine.Submit("densest-subgraph"));
  queries.push_back(engine.Submit("connectivity"));
  for (auto& q : queries) {
    auto run = q.get();
    if (!run.ok()) {
      std::printf("  query failed: %s\n", run.status().ToString().c_str());
      continue;
    }
    const RunReport& report = run.ValueOrDie();
    std::printf("  %-16s %s  (%.3fs, %llu NVRAM reads, 0 NVRAM writes)\n",
                report.algorithm.c_str(), report.summary.c_str(),
                report.wall_seconds,
                static_cast<unsigned long long>(report.cost.nvram_reads));
  }
  return 0;
}
