// sage_cli: command-line driver for the Sage engine. Runs any of the 18
// algorithms on a graph loaded from disk (Ligra AdjacencyGraph or edge
// list) or generated on the fly, under any device configuration, and
// reports time plus PSAM counters.
//
//   sage_cli -algo bfs -graph web.adj -src 5
//   sage_cli -algo kcore -gen rmat -logn 20 -edges 16000000
//   sage_cli -algo pagerank -gen rmat -policy memory-mode -threads 4
//   sage_cli -list
#include <cstdio>
#include <functional>
#include <map>
#include <string>

#include "algorithms/algorithms.h"
#include "core/sage.h"

using namespace sage;

namespace {

Result<Graph> LoadGraph(const CommandLine& cmd) {
  if (cmd.Has("graph")) {
    std::string path = cmd.GetString("graph");
    if (path.size() > 4 && path.substr(path.size() - 4) == ".adj") {
      return ReadAdjacencyGraph(path, /*symmetric=*/true);
    }
    return ReadEdgeList(path, cmd.Has("weighted"));
  }
  std::string gen = cmd.GetString("gen", "rmat");
  int log_n = static_cast<int>(cmd.GetInt("logn", 16));
  uint64_t edges = static_cast<uint64_t>(cmd.GetInt("edges", 1 << 20));
  uint64_t seed = static_cast<uint64_t>(cmd.GetInt("seed", 1));
  if (gen == "rmat") return RmatGraph(log_n, edges, seed);
  if (gen == "uniform") {
    return UniformRandomGraph(vertex_id{1} << log_n, edges, seed);
  }
  if (gen == "grid") {
    vertex_id side = vertex_id{1} << (log_n / 2);
    return GridGraph(side, side);
  }
  return Status::InvalidArgument("unknown generator '" + gen +
                                 "' (rmat|uniform|grid)");
}

nvram::AllocPolicy ParsePolicy(const std::string& name) {
  if (name == "all-dram") return nvram::AllocPolicy::kAllDram;
  if (name == "all-nvram") return nvram::AllocPolicy::kAllNvram;
  if (name == "memory-mode") return nvram::AllocPolicy::kMemoryMode;
  return nvram::AllocPolicy::kGraphNvram;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cmd(argc, argv);

  // Algorithm registry: name -> runner(graph, weighted graph, src).
  using Runner =
      std::function<std::string(const Graph&, const Graph&, vertex_id)>;
  std::map<std::string, Runner> algos;
  algos["bfs"] = [](const Graph& g, const Graph&, vertex_id src) {
    auto p = Bfs(g, src);
    size_t reached = count_if(p, [](vertex_id x) { return x != kNoVertex; });
    return "reached=" + std::to_string(reached);
  };
  algos["wbfs"] = [](const Graph&, const Graph& gw, vertex_id src) {
    auto d = WeightedBfs(gw, src);
    size_t reached = count_if(d, [](uint64_t x) { return x != kInfDist; });
    return "reached=" + std::to_string(reached);
  };
  algos["bellman-ford"] = [](const Graph&, const Graph& gw, vertex_id src) {
    auto d = BellmanFord(gw, src);
    size_t reached = count_if(d, [](uint64_t x) { return x != kInfDist; });
    return "reached=" + std::to_string(reached);
  };
  algos["widest-path"] = [](const Graph&, const Graph& gw, vertex_id src) {
    auto c = WidestPathBucketed(gw, src);
    size_t reached = count_if(c, [](uint64_t x) { return x > 0; });
    return "reached=" + std::to_string(reached);
  };
  algos["betweenness"] = [](const Graph& g, const Graph&, vertex_id src) {
    auto bc = Betweenness(g, src);
    double best = reduce_max<double>(
        bc.size(), [&](size_t v) { return bc[v]; }, 0.0);
    return "max_dependency=" + std::to_string(best);
  };
  algos["spanner"] = [](const Graph& g, const Graph&, vertex_id) {
    return "spanner_edges=" + std::to_string(Spanner(g).size());
  };
  algos["ldd"] = [](const Graph& g, const Graph&, vertex_id) {
    auto l = LowDiameterDecomposition(g, 0.2, 1);
    return "clusters=" + std::to_string(l.num_clusters);
  };
  algos["connectivity"] = [](const Graph& g, const Graph&, vertex_id) {
    auto labels = parallel_sort(Connectivity(g));
    return "components=" + std::to_string(unique_sorted(labels).size());
  };
  algos["spanning-forest"] = [](const Graph& g, const Graph&, vertex_id) {
    return "forest_edges=" + std::to_string(SpanningForest(g).size());
  };
  algos["biconnectivity"] = [](const Graph& g, const Graph&, vertex_id) {
    auto bicc = Biconnectivity(g);
    std::vector<vertex_id> labels;
    for (vertex_id v = 0; v < g.num_vertices(); ++v) {
      if (bicc.node_label[v] != kNoVertex) labels.push_back(bicc.node_label[v]);
    }
    auto sorted = parallel_sort(labels);
    return "bicc_components=" + std::to_string(unique_sorted(sorted).size());
  };
  algos["mis"] = [](const Graph& g, const Graph&, vertex_id) {
    auto mis = MaximalIndependentSet(g, 1);
    return "mis_size=" + std::to_string(count_if(
               mis, [](uint8_t m) { return m == 1; }));
  };
  algos["maximal-matching"] = [](const Graph& g, const Graph&, vertex_id) {
    return "matched_pairs=" + std::to_string(MaximalMatching(g, 1).size());
  };
  algos["coloring"] = [](const Graph& g, const Graph&, vertex_id) {
    auto c = GraphColoring(g, 1);
    uint32_t palette = 1 + reduce_max<uint32_t>(
        c.size(), [&](size_t v) { return c[v]; }, 0);
    return "colors=" + std::to_string(palette);
  };
  algos["set-cover"] = [](const Graph& g, const Graph&, vertex_id) {
    return "cover_size=" + std::to_string(ApproximateSetCover(g).size());
  };
  algos["kcore"] = [](const Graph& g, const Graph&, vertex_id) {
    auto r = KCore(g);
    return "k_max=" + std::to_string(r.max_core) +
           " rounds=" + std::to_string(r.rounds);
  };
  algos["densest-subgraph"] = [](const Graph& g, const Graph&, vertex_id) {
    auto r = ApproxDensestSubgraph(g);
    return "density=" + std::to_string(r.density) +
           " members=" + std::to_string(r.members.size());
  };
  algos["triangle-count"] = [](const Graph& g, const Graph&, vertex_id) {
    return "triangles=" + std::to_string(TriangleCount(g).triangles);
  };
  algos["pagerank"] = [](const Graph& g, const Graph&, vertex_id) {
    auto r = PageRank(g, 1e-6, 100);
    return "iterations=" + std::to_string(r.iterations);
  };

  if (cmd.Has("list") || !cmd.Has("algo")) {
    std::printf("usage: sage_cli -algo <name> [-graph file.adj | -gen "
                "rmat|uniform|grid -logn N -edges M] [-src V]\n"
                "                [-policy graph-nvram|all-dram|all-nvram|"
                "memory-mode] [-threads T] [-omega W]\nalgorithms:");
    for (const auto& [name, fn] : algos) std::printf(" %s", name.c_str());
    std::printf("\n");
    return cmd.Has("list") ? 0 : 1;
  }
  std::string algo = cmd.GetString("algo");
  auto it = algos.find(algo);
  if (it == algos.end()) {
    std::fprintf(stderr, "unknown algorithm '%s' (try -list)\n",
                 algo.c_str());
    return 1;
  }
  if (cmd.Has("threads")) {
    Scheduler::Reset(static_cast<int>(cmd.GetInt("threads")));
  }
  auto loaded = LoadGraph(cmd);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Graph g = loaded.TakeValue();
  // Weighted algorithms need weights; synthesize them when absent.
  Graph gw = g.weighted() ? g : AddRandomWeights(g, 99);
  vertex_id src = static_cast<vertex_id>(cmd.GetInt("src", 0));
  if (src >= g.num_vertices()) src = 0;

  auto& cm = nvram::CostModel::Get();
  auto cfg = cm.config();
  cfg.omega = cmd.GetDouble("omega", cfg.omega);
  cm.SetConfig(cfg);
  cm.SetAllocPolicy(ParsePolicy(cmd.GetString("policy", "graph-nvram")));
  cm.ResetCounters();

  auto stats = ComputeStats(g);
  std::printf("graph: %s\n", stats.ToString().c_str());
  Timer t;
  std::string result = it->second(g, gw, src);
  double secs = t.Seconds();
  auto totals = cm.Totals();
  std::printf("%s: %s\n", algo.c_str(), result.c_str());
  std::printf("time: %.4fs on %d threads | policy=%s omega=%.1f\n", secs,
              num_workers(), nvram::AllocPolicyName(cm.alloc_policy()),
              cm.config().omega);
  std::printf("psam: %s | device-time=%.1fms\n", totals.ToString().c_str(),
              cm.EmulatedNanos(totals, num_workers()) / 1e6);
  return 0;
}
