// sage_cli: command-line driver for the Sage engine. Runs any registered
// algorithm on a graph loaded from disk (Ligra AdjacencyGraph, edge list,
// or binary .bsadj image, auto-detected; .bsadj opens zero-copy via mmap
// as the NVRAM-resident graph) or generated on the fly, under any device
// configuration, and reports time plus PSAM counters — human-readable by
// default, or as a machine-readable RunReport with -json.
//
//   sage_cli -algo bfs -graph web.adj -src 5
//   sage_cli -algo kcore -gen rmat -logn 20 -edges 16000000
//   sage_cli -algo pagerank -gen rmat -policy memory-mode -threads 4
//   sage_cli -algo triangle-count -gen rmat -json
//   sage_cli -graph web.adj -convert web.bsadj   # text -> binary, once
//   sage_cli -algo bfs -graph web.bsadj -src 5   # then mmap-open per run
//   sage_cli -list
//
// -convert serializes the loaded (or generated) graph and exits: a
// ".bsadj" destination writes the binary CSR image, anything else the text
// AdjacencyGraph format.
//
// The algorithm set comes from sage::AlgorithmRegistry; this binary holds
// no algorithm table of its own.
#include <algorithm>
#include <cstdio>
#include <string>

#include "core/sage.h"

using namespace sage;

namespace {

Result<Graph> LoadGraph(const CommandLine& cmd) {
  if (cmd.Has("graph")) {
    // -weighted forces the weight column on edge lists whose layout
    // defeats column sniffing (adjacency headers still win).
    return ReadGraphAuto(cmd.GetString("graph"), /*symmetric=*/true,
                         /*force_weighted=*/cmd.Has("weighted"));
  }
  std::string gen = cmd.GetString("gen", "rmat");
  int log_n = static_cast<int>(cmd.GetInt("logn", 16));
  uint64_t edges = static_cast<uint64_t>(cmd.GetInt("edges", 1 << 20));
  uint64_t seed = static_cast<uint64_t>(cmd.GetInt("seed", 1));
  if (gen == "rmat") return RmatGraph(log_n, edges, seed);
  if (gen == "uniform") {
    return UniformRandomGraph(vertex_id{1} << log_n, edges, seed);
  }
  if (gen == "grid") {
    vertex_id side = vertex_id{1} << (log_n / 2);
    return GridGraph(side, side);
  }
  return Status::InvalidArgument("unknown generator '" + gen +
                                 "' (rmat|uniform|grid)");
}

void PrintUsage() {
  std::printf(
      "usage: sage_cli -algo <name> [-graph file [-weighted] | -gen "
      "rmat|uniform|grid -logn N -edges M] [-src V]\n"
      "                [-policy %s] [-threads T] [-omega W] [-prefetch] "
      "[-json]\n"
      "                [-updates file] [-compact]\n"
      "                [-cache [-cache-bytes B]] [-deadline-ms D] "
      "[-tenant NAME]\n"
      "                [-repeat N [-updates-between file]] [-stats]\n"
      "       sage_cli [-graph file | -gen ...] -convert out.bsadj|out.adj\n"
      "       sage_cli [-graph file | -gen ...] -convert-sharded out.bsadjx "
      "[-shards K]\n"
      "-convert-sharded splits the graph into K edge-balanced .bsadj\n"
      "segments plus a .bsadjx manifest (default K=4); a .bsadjx -graph\n"
      "input opens the assembled multi-shard mapping, reports per-shard\n"
      "NVRAM counters in -json, and honors -shard-parallel (one edgeMap\n"
      "driver thread per shard).\n"
      "-updates applies an edge-update stream ('u v [w]' inserts, '- u v'\n"
      "removes) as a DRAM delta over the loaded graph before the run;\n"
      "-compact merges the delta into the base (rewriting a mapped .bsadj\n"
      "image in place) first.\n"
      "-cache serves repeat queries from the epoch-keyed result cache;\n"
      "-deadline-ms bounds each run (DeadlineExceeded past it); -repeat\n"
      "submits the query N times (-updates-between applies an update file\n"
      "between repeats, bumping the epoch); -stats prints the service's\n"
      "stats JSON after the runs.\n"
      "algorithms:",
      AllocPolicyChoices());
  for (const auto& entry : AlgorithmRegistry::Get().entries()) {
    std::printf(" %s", entry.info.name.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cmd(argc, argv);

  if (cmd.Has("list-names")) {
    // One name per line, for scripts (the CTest smoke matrix).
    for (const auto& entry : AlgorithmRegistry::Get().entries()) {
      std::printf("%s\n", entry.info.name.c_str());
    }
    return 0;
  }
  if (cmd.Has("convert") || cmd.Has("convert-sharded")) {
    // Conversion mode: load (or generate), serialize, exit. Destination
    // extension picks the format; .bsadj graphs then reload via mmap.
    // -convert-sharded splits into -shards (default 4) .bsadj segments
    // plus the .bsadjx manifest at the destination path.
    const bool sharded = cmd.Has("convert-sharded");
    std::string out = cmd.GetString(sharded ? "convert-sharded" : "convert");
    if (out.empty()) {
      std::fprintf(stderr, "-convert%s needs a destination path\n",
                   sharded ? "-sharded" : "");
      return 1;
    }
    auto loaded = LoadGraph(cmd);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    const Graph& g = loaded.ValueOrDie();
    Status st;
    uint32_t shards = 0;
    if (sharded) {
      shards = static_cast<uint32_t>(cmd.GetInt("shards", 4));
      st = WriteShardedGraph(g, out, shards);
    } else {
      st = out.ends_with(".bsadj") ? WriteBinaryGraph(g, out)
                                   : WriteAdjacencyGraph(g, out);
    }
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s: n=%u m=%llu%s%s", out.c_str(), g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()),
                g.weighted() ? " weighted" : "",
                g.symmetric() ? " symmetric" : "");
    if (sharded) std::printf(" shards=%u", shards);
    std::printf("\n");
    return 0;
  }

  if (cmd.Has("list") || !cmd.Has("algo")) {
    PrintUsage();
    return cmd.Has("list") ? 0 : 1;
  }

  std::string algo = cmd.GetString("algo");
  if (AlgorithmRegistry::Get().Find(algo) == nullptr) {
    std::fprintf(stderr, "unknown algorithm '%s' (try -list)\n",
                 algo.c_str());
    return 1;
  }

  RunContext ctx;
  auto policy = ParseAllocPolicy(cmd.GetString("policy", "graph-nvram"));
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 1;
  }
  ctx.policy = policy.ValueOrDie();
  ctx.omega = cmd.GetDouble("omega", ctx.omega);
  ctx.num_threads = static_cast<int>(cmd.GetInt("threads", 0));
  // Page-frontier prefetching; only effective with a mapped .bsadj graph.
  ctx.prefetch.enabled = cmd.Has("prefetch");
  // Shard-parallel edgeMap drive; only effective on a .bsadjx graph.
  ctx.edge_map.shard_parallel = cmd.Has("shard-parallel");
  // Apply the thread budget before loading so generation/building honor it
  // too (the run itself would apply it, but only after the graph exists).
  if (ctx.num_threads > 0) Scheduler::Reset(ctx.num_threads);

  // Load through Engine::FromFile when reading a file so a mapped .bsadj
  // image's path is remembered and -compact can rewrite it in place.
  auto engine_or = [&]() -> Result<Engine> {
    if (cmd.Has("graph") && !cmd.Has("weighted")) {
      return Engine::FromFile(cmd.GetString("graph"), ctx);
    }
    auto loaded = LoadGraph(cmd);
    if (!loaded.ok()) return loaded.status();
    return Engine(loaded.TakeValue(), ctx);
  }();
  if (!engine_or.ok()) {
    std::fprintf(stderr, "%s\n", engine_or.status().ToString().c_str());
    return 1;
  }
  Engine engine = engine_or.TakeValue();

  RunParams params;
  params.source = static_cast<vertex_id>(cmd.GetInt("src", 0));

  const bool json = cmd.Has("json");

  if (cmd.Has("updates")) {
    auto updates = ReadEdgeUpdates(cmd.GetString("updates"));
    if (!updates.ok()) {
      std::fprintf(stderr, "%s\n", updates.status().ToString().c_str());
      return 1;
    }
    auto applied = engine.ApplyUpdates(updates.ValueOrDie());
    if (!applied.ok()) {
      std::fprintf(stderr, "%s\n", applied.status().ToString().c_str());
      return 1;
    }
    if (!json) {
      const auto& stats = applied.ValueOrDie();
      std::printf("updates: applied %llu -> epoch %llu, delta-edges=%llu\n",
                  static_cast<unsigned long long>(stats.applied),
                  static_cast<unsigned long long>(stats.epoch),
                  static_cast<unsigned long long>(stats.delta_edges));
    }
  }
  if (cmd.Has("compact")) {
    auto compacted = engine.Compact();
    if (!compacted.ok()) {
      std::fprintf(stderr, "%s\n", compacted.status().ToString().c_str());
      return 1;
    }
    if (!json) {
      const auto& stats = compacted.ValueOrDie();
      std::printf("compacted: epoch %llu, m=%llu%s\n",
                  static_cast<unsigned long long>(stats.epoch),
                  static_cast<unsigned long long>(stats.num_edges),
                  stats.image_rewritten ? " (image rewritten)" : "");
    }
  }
  if (!json) {
    auto stats = ComputeStats(engine.graph());
    std::printf("graph: %s\n", stats.ToString().c_str());
  }

  // Serving path: every run goes through the engine's QueryService. The
  // service is sized on first use, so the cache budget must be configured
  // before the first submission.
  QueryService::Options service_options;
  if (cmd.Has("cache")) {
    service_options.cache_bytes = static_cast<uint64_t>(
        cmd.GetInt("cache-bytes", 256ll << 20));
  }
  engine.service(service_options);

  RunContext query_ctx = ctx;
  query_ctx.deadline_ms = cmd.GetDouble("deadline-ms", 0);
  const std::string tenant = cmd.GetString("tenant", "default");
  const int repeat =
      std::max(1, static_cast<int>(cmd.GetInt("repeat", 1)));
  for (int i = 0; i < repeat; ++i) {
    auto run = engine.Submit(algo, params, query_ctx, tenant).get();
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    const RunReport& report = run.ValueOrDie();
    if (json) {
      std::printf("%s\n", report.ToJson().c_str());
    } else {
      std::printf("%s", report.ToString().c_str());
    }
    if (i + 1 < repeat && cmd.Has("updates-between")) {
      auto updates = ReadEdgeUpdates(cmd.GetString("updates-between"));
      if (!updates.ok()) {
        std::fprintf(stderr, "%s\n", updates.status().ToString().c_str());
        return 1;
      }
      auto applied = engine.ApplyUpdates(updates.ValueOrDie());
      if (!applied.ok()) {
        std::fprintf(stderr, "%s\n", applied.status().ToString().c_str());
        return 1;
      }
      if (!json) {
        std::printf("updates-between: epoch %llu\n",
                    static_cast<unsigned long long>(
                        applied.ValueOrDie().epoch));
      }
    }
  }
  if (cmd.Has("stats")) {
    std::printf("%s\n", engine.service().StatsJson().c_str());
  }
  return 0;
}
