// sage_serve: a thin TCP line-protocol front end over the Sage engine's
// QueryService, turning sage_cli workloads into a long-running service so
// load can be generated externally (netcat, a load generator, or the
// bench harness on another machine).
//
//   sage_serve -gen rmat -logn 18 -edges 1000000 -cache -port 7477
//   printf 'RUN bfs src=3 tenant=web deadline_ms=500\n' | nc localhost 7477
//
// Protocol: one request per line, one JSON response line per request.
//
//   RUN <algo> [src=N] [seed=N] [tenant=NAME] [deadline_ms=D]
//       -> {"ok": true, "report": {...}} | {"ok": false, "error": "..."}
//   TENANT <name> [max_in_flight=N] [max_queued=N] [priority=P]
//       -> {"ok": true}            (registers/reconfigures a tenant)
//   STATS -> the service stats JSON (single line)
//   PING  -> {"ok": true}
//   QUIT  -> closes the connection
//
// One thread per connection; concurrency across connections is bounded by
// the service's session pool and queue, not by the socket layer.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/sage.h"

using namespace sage;

namespace {

Result<Graph> LoadGraph(const CommandLine& cmd) {
  if (cmd.Has("graph")) {
    return ReadGraphAuto(cmd.GetString("graph"), /*symmetric=*/true);
  }
  int log_n = static_cast<int>(cmd.GetInt("logn", 16));
  uint64_t edges = static_cast<uint64_t>(cmd.GetInt("edges", 1 << 20));
  uint64_t seed = static_cast<uint64_t>(cmd.GetInt("seed", 1));
  return RmatGraph(log_n, edges, seed);
}

/// Flattens a (possibly multi-line) JSON document onto one protocol line.
std::string OneLine(const std::string& json) {
  std::string out;
  out.reserve(json.size());
  for (char c : json) out += (c == '\n') ? ' ' : c;
  return out;
}

std::string ErrorLine(const std::string& message) {
  return "{\"ok\": false, \"error\": " + jsonw::Str(message) + "}";
}

/// Parses "key=value" tokens after the command word into (key, value).
bool KeyValue(const std::string& token, std::string* key,
              std::string* value) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

std::string HandleRun(Engine& engine, std::istringstream& line) {
  std::string algo;
  line >> algo;
  if (algo.empty()) return ErrorLine("RUN needs an algorithm name");
  RunParams params;
  RunContext ctx = engine.context();
  std::string tenant = "default";
  std::string token;
  while (line >> token) {
    std::string key, value;
    if (!KeyValue(token, &key, &value)) {
      return ErrorLine("malformed token '" + token + "' (want key=value)");
    }
    try {
      if (key == "src") {
        params.source = static_cast<vertex_id>(std::stoull(value));
      } else if (key == "seed") {
        params.seed = std::stoull(value);
      } else if (key == "tenant") {
        tenant = value;
      } else if (key == "deadline_ms") {
        ctx.deadline_ms = std::stod(value);
      } else {
        return ErrorLine("unknown RUN option '" + key + "'");
      }
    } catch (const std::exception&) {
      return ErrorLine("bad value for '" + key + "': " + value);
    }
  }
  auto run = engine.Submit(algo, params, ctx, tenant).get();
  if (!run.ok()) return ErrorLine(run.status().ToString());
  return "{\"ok\": true, \"report\": " +
         OneLine(run.ValueOrDie().ToJson()) + "}";
}

std::string HandleTenant(Engine& engine, std::istringstream& line) {
  std::string name;
  line >> name;
  if (name.empty()) return ErrorLine("TENANT needs a name");
  TenantConfig config;
  std::string token;
  while (line >> token) {
    std::string key, value;
    if (!KeyValue(token, &key, &value)) {
      return ErrorLine("malformed token '" + token + "' (want key=value)");
    }
    try {
      if (key == "max_in_flight") {
        config.max_in_flight = std::stoull(value);
      } else if (key == "max_queued") {
        config.max_queued = std::stoull(value);
      } else if (key == "priority") {
        config.priority = std::stoi(value);
      } else {
        return ErrorLine("unknown TENANT option '" + key + "'");
      }
    } catch (const std::exception&) {
      return ErrorLine("bad value for '" + key + "': " + value);
    }
  }
  engine.service().RegisterTenant(name, config);
  return "{\"ok\": true}";
}

void ServeConnection(int fd, Engine& engine) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t got = read(fd, chunk, sizeof(chunk));
    if (got <= 0) break;
    buffer.append(chunk, static_cast<size_t>(got));
    size_t nl;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      std::string request = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!request.empty() && request.back() == '\r') request.pop_back();
      std::istringstream line(request);
      std::string command;
      line >> command;
      std::string response;
      if (command == "RUN") {
        response = HandleRun(engine, line);
      } else if (command == "TENANT") {
        response = HandleTenant(engine, line);
      } else if (command == "STATS") {
        response = OneLine(engine.service().StatsJson());
      } else if (command == "PING") {
        response = "{\"ok\": true}";
      } else if (command == "QUIT") {
        close(fd);
        return;
      } else if (command.empty()) {
        continue;
      } else {
        response = ErrorLine("unknown command '" + command + "'");
      }
      response += '\n';
      size_t sent = 0;
      while (sent < response.size()) {
        const ssize_t wrote =
            write(fd, response.data() + sent, response.size() - sent);
        if (wrote <= 0) {
          close(fd);
          return;
        }
        sent += static_cast<size_t>(wrote);
      }
    }
  }
  close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cmd(argc, argv);
  if (cmd.Has("help")) {
    std::printf(
        "usage: sage_serve [-graph file | -logn N -edges M] [-port P]\n"
        "                  [-sessions S] [-cache [-cache-bytes B]]\n"
        "serves RUN/TENANT/STATS/PING/QUIT lines over TCP (see header)\n");
    return 0;
  }
  // A peer that disconnects mid-response must not kill the server.
  std::signal(SIGPIPE, SIG_IGN);

  auto loaded = LoadGraph(cmd);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Engine engine(loaded.TakeValue());
  QueryService::Options options;
  options.sessions = static_cast<int>(cmd.GetInt("sessions", 4));
  if (cmd.Has("cache")) {
    options.cache_bytes =
        static_cast<uint64_t>(cmd.GetInt("cache-bytes", 256ll << 20));
  }
  engine.service(options);

  const int port = static_cast<int>(cmd.GetInt("port", 7477));
  const int listener = socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  const int reuse = 1;
  setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(listener, 64) < 0) {
    std::perror("bind/listen");
    close(listener);
    return 1;
  }
  std::printf("sage_serve: listening on 127.0.0.1:%d (n=%u m=%llu%s)\n",
              port, engine.graph().num_vertices(),
              static_cast<unsigned long long>(engine.graph().num_edges()),
              cmd.Has("cache") ? ", cache on" : "");
  std::fflush(stdout);

  std::vector<std::thread> connections;
  for (;;) {
    const int fd = accept(listener, nullptr, nullptr);
    if (fd < 0) break;
    connections.emplace_back([fd, &engine] { ServeConnection(fd, engine); });
  }
  for (std::thread& t : connections) t.join();
  close(listener);
  return 0;
}
